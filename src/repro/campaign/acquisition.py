"""Acquisition strategies: which design points to evaluate next.

Classical sequential experimentation (Box-Wilson) alternates between
*moving* the experimental region toward better responses and
*shrinking* it around a promising optimum; modern surrogate-guided
exploration adds *infill* where the model is uncertain and pure
*exploitation* around the incumbent.  This module implements all four
as pluggable :class:`AcquisitionStrategy` objects over a movable,
shrinkable :class:`FactorBox` in global coded units, plus an
:class:`AutoAcquisition` that picks between them from the round's
diagnostics — the default driver of :class:`~repro.campaign.Campaign`.

Every strategy is a pure, seeded function of its
:class:`RoundContext`, which is what makes a resumed campaign
bit-identical to an uninterrupted one: replaying the same context
proposes the same points.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.doe.ccd import central_composite
from repro.core.doe.lhs import latin_hypercube
from repro.core.optimize import OptimizationOutcome
from repro.errors import DesignError

#: Local-coded magnitude past which an optimum counts as pinned to the
#: trust-region boundary (the Box-Wilson "walk out of the box" cue).
BOUNDARY_TOL = 0.95


@dataclass(frozen=True)
class FactorBox:
    """A trust region in global coded units.

    The campaign fits and optimizes in the *local* coordinates of this
    box (where it spans ``[-1, 1]^k``, so every RSM tool applies
    unchanged) and converts to *global* coded units — the design
    space's own ``[-1, 1]^k`` — for evaluation, journaling and
    deduplication.  Boxes only ever shrink or translate; the mapping
    is affine per factor, so coded-unit semantics (orthogonality,
    comparable coefficients) survive every zoom and pan.
    """

    center: np.ndarray
    half_width: np.ndarray

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float).ravel()
        half_width = np.asarray(self.half_width, dtype=float).ravel()
        if center.shape != half_width.shape:
            raise DesignError(
                f"box center has {center.size} entries, half_width "
                f"{half_width.size}"
            )
        if np.any(half_width <= 0.0):
            raise DesignError("box half_width must be positive everywhere")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "half_width", half_width)

    @classmethod
    def full(cls, k: int) -> "FactorBox":
        """The whole design space: centre 0, half-width 1."""
        return cls(center=np.zeros(k), half_width=np.ones(k))

    @property
    def k(self) -> int:
        return self.center.size

    # -- coordinate transforms -------------------------------------------------

    def to_global(self, local: np.ndarray) -> np.ndarray:
        """Local box coordinates ([-1,1]^k) -> global coded units."""
        local = np.asarray(local, dtype=float)
        return self.center + local * self.half_width

    def to_local(self, global_coded: np.ndarray) -> np.ndarray:
        """Global coded units -> local box coordinates."""
        global_coded = np.asarray(global_coded, dtype=float)
        return (global_coded - self.center) / self.half_width

    def contains(self, global_coded: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Row mask of global points inside the box (inclusive)."""
        local = np.atleast_2d(self.to_local(global_coded))
        return np.all(np.abs(local) <= 1.0 + tol, axis=1)

    # -- moves -----------------------------------------------------------------

    def zoomed(
        self,
        center_global: np.ndarray,
        shrink: float,
        min_half_width: float,
    ) -> "FactorBox":
        """Shrink toward a new centre, clamped inside the global box.

        The new half-width is ``shrink x`` the old one, floored at
        ``min_half_width``; the centre is clamped so the zoomed box
        stays inside global ``[-1, 1]^k`` (the physical factor limits
        are hard).
        """
        if not (0.0 < shrink <= 1.0):
            raise DesignError(f"shrink must be in (0, 1], got {shrink}")
        half = np.maximum(self.half_width * shrink, min_half_width)
        half = np.minimum(half, 1.0)
        center = np.clip(
            np.asarray(center_global, dtype=float).ravel(), -1.0 + half, 1.0 - half
        )
        return FactorBox(center=center, half_width=half)

    def panned(
        self, center_global: np.ndarray
    ) -> "FactorBox":
        """Translate (same size) to a new centre, clamped inside the
        global box."""
        half = np.minimum(self.half_width, 1.0)
        center = np.clip(
            np.asarray(center_global, dtype=float).ravel(), -1.0 + half, 1.0 - half
        )
        return FactorBox(center=center, half_width=half)

    # -- serialization ---------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "center": [float(v) for v in self.center],
            "half_width": [float(v) for v in self.half_width],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FactorBox":
        return cls(
            center=np.asarray(payload["center"], dtype=float),
            half_width=np.asarray(payload["half_width"], dtype=float),
        )


@dataclass
class RoundContext:
    """Everything an acquisition strategy may condition on.

    Attributes:
        round_index: the round that just completed.
        box: the trust region that round was fitted in.
        surfaces: fitted surfaces in *local* coordinates of ``box``.
        outcome: the objective optimum in local coordinates.
        objective_surface: the single fitted surface the objective
            optimizes (None for composite objectives) — gives
            :class:`SteepestAscent` an analytic gradient.
        optimum_global: that optimum in global coded units.
        x_global: (n, k) all evaluated global coded points so far.
        loo_error: per-point |leave-one-out residual| of the objective
            response(s), aligned with the *fit* subset (see
            ``fit_index``), normalized per response; used to weight
            infill toward badly-modelled regions.
        fit_index: indices into ``x_global`` of the rows the round's
            fit used.
        cv_error: the round's scalar cross-validation error
            (normalized; None when undefined).
        lack_of_fit_p: lack-of-fit p-value (None without replicates).
        batch: target number of new points per round.
        seed: deterministic per-round seed.
        shrink: zoom factor from the campaign config.
        min_half_width: smallest allowed box half-width.
    """

    round_index: int
    box: FactorBox
    surfaces: Mapping[str, object]
    outcome: OptimizationOutcome
    objective_surface: object | None
    optimum_global: np.ndarray
    x_global: np.ndarray
    loo_error: np.ndarray
    fit_index: np.ndarray
    cv_error: float | None
    lack_of_fit_p: float | None
    batch: int
    seed: int
    shrink: float = 0.5
    min_half_width: float = 0.05


@dataclass
class Proposal:
    """What to run next: points now, and the box the next fit uses."""

    points: np.ndarray
    box: FactorBox
    reason: str
    strategy: str = ""


class AcquisitionStrategy(ABC):
    """Chooses the next round's batch (and trust region)."""

    name: str = "abstract"

    @abstractmethod
    def propose(self, ctx: RoundContext) -> Proposal:
        """Return the next batch of *global coded* points + box."""

    def params(self) -> dict:
        """Constructor parameters, for journal round-trips.

        A campaign journals its acquisition as ``{name, params}`` so a
        resumed run rebuilds the *same* strategy — a strategy with
        tunables must report them here or resume would silently fall
        back to defaults and break bit-identical continuation.
        """
        return {}

    def spec(self) -> "str | dict":
        """Serialized form: the bare name, or ``{name, params}``."""
        params = self.params()
        return {"name": self.name, "params": params} if params else self.name

    def describe(self) -> dict:
        return {"acquisition": self.name, **self.params()}


def _design_in_box(box: FactorBox, matrix_local: np.ndarray) -> np.ndarray:
    """Map a local design matrix into clipped global coded points."""
    return np.clip(box.to_global(np.atleast_2d(matrix_local)), -1.0, 1.0)


def initial_design_matrix(
    kind: str, k: int, n: int | None, seed: int
) -> np.ndarray:
    """The round-0 design, in local (box) coordinates.

    ``"ccd"`` builds a face-centred CCD (fractional core at k=5..7,
    3 centre replicates for pure error); ``"lhs"`` a seeded maximin
    LHS of ``n`` (default ``max(4k, 12)``) runs plus one centre point.
    """
    if kind == "ccd":
        design = central_composite(
            k, alpha="face", n_center=3, fraction=k in (5, 6, 7)
        )
        return design.matrix
    if kind == "lhs":
        runs = n if n is not None else max(4 * k, 12)
        design = latin_hypercube(runs, k, seed=seed)
        return np.vstack([design.matrix, np.zeros((1, k))])
    raise DesignError(
        f"unknown initial design kind {kind!r}; pick ccd or lhs"
    )


class TrustRegionZoom(AcquisitionStrategy):
    """Shrink the box toward the current surface optimum and re-design.

    The Box-Wilson "second phase": once the optimum sits inside the
    region, halve (by default) the region around it and run a compact
    face-centred CCD there, so the next quadratic fit resolves the
    curvature the old, wider fit averaged out.
    """

    name = "zoom"

    def propose(self, ctx: RoundContext) -> Proposal:
        box = ctx.box.zoomed(
            ctx.optimum_global, ctx.shrink, ctx.min_half_width
        )
        design = central_composite(
            box.k, alpha="face", n_center=1, fraction=box.k in (5, 6, 7)
        )
        # Budget-respecting subset: curvature resolution near the new
        # centre first (centre, then axials), factorial corners last.
        # Points already evaluated inside the zoomed box count toward
        # the next fit, and the campaign tops the batch up if the
        # model would be unidentifiable — so a small batch spends on
        # what the old, wider sample resolves worst.
        n_f = design.meta["n_factorial"]
        n_axial = design.meta["n_axial"]
        corners = design.matrix[:n_f]
        axials = design.matrix[n_f : n_f + n_axial]
        centre = design.matrix[n_f + n_axial :]
        prioritized = np.vstack([centre, axials, corners])
        local = prioritized[: max(ctx.batch, 1)]
        return Proposal(
            points=_design_in_box(box, local),
            box=box,
            reason=(
                f"zoom x{ctx.shrink:g} toward optimum "
                f"(half-width -> {float(np.max(box.half_width)):.3f})"
            ),
            strategy=self.name,
        )


class SpaceFillingInfill(AcquisitionStrategy):
    """Fill the current box where the surrogate is least trustworthy.

    Candidates come from a seeded maximin LHS over the box; each is
    scored by its distance to the already-evaluated points times one
    plus the leave-one-out error of the nearest fitted run — so the
    batch lands in cells that are both empty *and* badly modelled.
    The box does not move: infill is for rounds where the model, not
    the region, is the problem.
    """

    name = "infill"

    def __init__(self, oversample: int = 8):
        if oversample < 1:
            raise DesignError(f"oversample must be >= 1, got {oversample}")
        self.oversample = oversample

    def params(self) -> dict:
        return {"oversample": self.oversample}

    def propose(self, ctx: RoundContext) -> Proposal:
        box = ctx.box
        n_cand = max(ctx.batch * self.oversample, ctx.batch)
        candidates = latin_hypercube(
            max(n_cand, 2), box.k, seed=ctx.seed
        ).matrix
        cand_global = _design_in_box(box, candidates)
        existing = np.atleast_2d(ctx.x_global)
        fit_rows = existing[ctx.fit_index] if len(ctx.fit_index) else existing
        errors = (
            ctx.loo_error
            if ctx.loo_error.size == fit_rows.shape[0]
            else np.zeros(fit_rows.shape[0])
        )
        chosen: list[np.ndarray] = []
        # Distances are measured in box-local units so a narrow box
        # still spreads its batch.
        cand_local = box.to_local(cand_global)
        exist_local = np.atleast_2d(box.to_local(existing))
        fit_local = np.atleast_2d(box.to_local(fit_rows))
        dist = np.min(
            np.linalg.norm(
                cand_local[:, None, :] - exist_local[None, :, :], axis=-1
            ),
            axis=1,
        )
        nearest_fit = np.argmin(
            np.linalg.norm(
                cand_local[:, None, :] - fit_local[None, :, :], axis=-1
            ),
            axis=1,
        )
        weight = 1.0 + errors[nearest_fit]
        available = np.ones(cand_global.shape[0], dtype=bool)
        for _ in range(min(ctx.batch, cand_global.shape[0])):
            score = np.where(available, dist * weight, -np.inf)
            pick = int(np.argmax(score))
            if not np.isfinite(score[pick]):
                break
            available[pick] = False
            chosen.append(cand_global[pick])
            # Greedy maximin update: future picks also keep their
            # distance from this one.
            dist = np.minimum(
                dist,
                np.linalg.norm(cand_local - cand_local[pick], axis=1),
            )
        points = (
            np.array(chosen) if chosen else np.empty((0, box.k))
        )
        return Proposal(
            points=points,
            box=box,
            reason=(
                f"space-filling infill ({len(chosen)} points weighted "
                "by LOO error)"
            ),
            strategy=self.name,
        )


class DesirabilityExploit(AcquisitionStrategy):
    """Polish the incumbent: a tight seeded cloud around the optimum.

    Pure exploitation for the endgame — the box stays put and the
    batch samples a radius-``radius`` (in local units) ball around the
    current optimum, clipped to the box, plus the optimum itself.
    """

    name = "exploit"

    def __init__(self, radius: float = 0.15):
        if radius <= 0.0:
            raise DesignError(f"radius must be > 0, got {radius}")
        self.radius = radius

    def params(self) -> dict:
        return {"radius": self.radius}

    def propose(self, ctx: RoundContext) -> Proposal:
        box = ctx.box
        rng = np.random.default_rng(ctx.seed)
        n_cloud = max(ctx.batch - 1, 0)
        local_opt = box.to_local(ctx.optimum_global)
        cloud = np.clip(
            local_opt
            + rng.uniform(-self.radius, self.radius, size=(n_cloud, box.k)),
            -1.0,
            1.0,
        )
        local = np.vstack([local_opt.reshape(1, -1), cloud])
        return Proposal(
            points=_design_in_box(box, local),
            box=box,
            reason=f"exploit around optimum (radius {self.radius:g})",
            strategy=self.name,
        )


class SteepestAscent(AcquisitionStrategy):
    """Walk out of the box toward a better region (Box-Wilson phase 1).

    When the optimum pins to the trust-region boundary the true
    optimum lies outside; this strategy proposes points along the
    steepest-ascent path of the objective surface (for a
    single-surface objective) or along the centre-to-optimum ray (for
    composites, whose geometric-mean objective has no single
    polynomial gradient), stepping in global coded units until the
    global box edge, and pans the trust region to the far end of the
    walk.
    """

    name = "ascent"

    def __init__(self, step: float = 0.25):
        if step <= 0.0:
            raise DesignError(f"step must be > 0, got {step}")
        self.step = step

    def params(self) -> dict:
        return {"step": self.step}

    def _direction(self, ctx: RoundContext) -> np.ndarray:
        surface = ctx.objective_surface
        if surface is not None:
            grad = surface.gradient(ctx.box.to_local(ctx.optimum_global))
            norm = float(np.linalg.norm(grad))
            if norm > 0.0:
                # The gradient lives in local units; rescale to global
                # so anisotropic boxes walk in true coded directions.
                direction = grad / ctx.box.half_width
                norm = float(np.linalg.norm(direction))
                if norm > 0.0:
                    return direction / norm
        direction = ctx.optimum_global - ctx.box.center
        norm = float(np.linalg.norm(direction))
        if norm == 0.0:
            # Degenerate (optimum at centre): fall back to +x1.
            direction = np.zeros(ctx.box.k)
            direction[0] = 1.0
            return direction
        return direction / norm

    def propose(self, ctx: RoundContext) -> Proposal:
        direction = self._direction(ctx)
        points: list[np.ndarray] = []
        seen: set[bytes] = set()
        x = np.asarray(ctx.optimum_global, dtype=float).copy()
        for _ in range(max(ctx.batch, 2)):
            x = x + self.step * direction
            clipped = np.round(np.clip(x, -1.0, 1.0), 12)
            # Dedupe (clipping can pin successive steps to the same
            # edge point) but preserve walk order: the last row must
            # stay the far end of the walk, which the box pans to.
            key = clipped.tobytes()
            if key not in seen:
                seen.add(key)
                points.append(clipped)
            if np.any(np.abs(x) > 1.0):
                break  # hit the hard factor limits
        matrix = np.array(points)
        box = ctx.box.panned(matrix[-1])
        return Proposal(
            points=matrix,
            box=box,
            reason=(
                f"steepest-ascent walk ({matrix.shape[0]} points, "
                f"step {self.step:g})"
            ),
            strategy=self.name,
        )


class AutoAcquisition(AcquisitionStrategy):
    """The default driver: pick the right move from the diagnostics.

    * optimum pinned to the box boundary and the box can still move
      -> :class:`SteepestAscent` (the optimum is elsewhere);
    * cross-validation error above ``cv_threshold`` ->
      :class:`SpaceFillingInfill` (the model is not trustworthy
      enough to steer yet);
    * box already at its minimum size -> :class:`DesirabilityExploit`
      (nothing left to shrink; polish the incumbent);
    * otherwise -> :class:`TrustRegionZoom` (converge on the basin).
    """

    name = "auto"

    def __init__(self, cv_threshold: float = 0.25):
        if cv_threshold <= 0.0:
            raise DesignError(
                f"cv_threshold must be > 0, got {cv_threshold}"
            )
        self.cv_threshold = cv_threshold
        self._zoom = TrustRegionZoom()
        self._infill = SpaceFillingInfill()
        self._exploit = DesirabilityExploit()
        self._ascent = SteepestAscent()

    def params(self) -> dict:
        return {"cv_threshold": self.cv_threshold}

    def propose(self, ctx: RoundContext) -> Proposal:
        local_opt = ctx.box.to_local(ctx.optimum_global)
        pinned = bool(np.max(np.abs(local_opt)) >= BOUNDARY_TOL)
        at_edge = np.abs(ctx.optimum_global) >= 1.0 - 1e-9
        # Pinned against the box but not against the global limits:
        # the surface says "better is outside this region".
        movable = pinned and not bool(
            np.all(at_edge[np.abs(local_opt) >= BOUNDARY_TOL])
        )
        if movable:
            return self._ascent.propose(ctx)
        if ctx.cv_error is not None and ctx.cv_error > self.cv_threshold:
            return self._infill.propose(ctx)
        if bool(
            np.all(ctx.box.half_width <= ctx.min_half_width + 1e-12)
        ):
            return self._exploit.propose(ctx)
        return self._zoom.propose(ctx)


#: Registry of acquisition strategies by name.
ACQUISITIONS: dict[str, type] = {
    "auto": AutoAcquisition,
    "zoom": TrustRegionZoom,
    "infill": SpaceFillingInfill,
    "exploit": DesirabilityExploit,
    "ascent": SteepestAscent,
}


def resolve_acquisition(
    spec: "str | Mapping | AcquisitionStrategy",
) -> AcquisitionStrategy:
    """Build a strategy from its serialized form, or pass one through.

    Accepts a ready strategy, a bare name, or the journaled
    ``{name, params}`` form (see
    :meth:`AcquisitionStrategy.spec`) so a resumed campaign rebuilds
    the exact strategy — tunables included — it was started with.
    """
    if isinstance(spec, AcquisitionStrategy):
        return spec
    params: dict = {}
    if isinstance(spec, Mapping):
        params = dict(spec.get("params") or {})
        spec = spec.get("name")
    try:
        factory = ACQUISITIONS[spec]
    except (KeyError, TypeError):
        raise DesignError(
            f"unknown acquisition strategy {spec!r}; available: "
            f"{', '.join(sorted(ACQUISITIONS))}"
        ) from None
    return factory(**params)
