"""Adaptive campaigns: sequential surrogate-guided exploration.

This package is the *driver* the distributed exec substrate was
missing: where PRs 1-4 built the machinery to evaluate arbitrary
design points fast (parallel backends, shared persistent caches,
durable work queues, worker fleets), a :class:`Campaign` decides
*which points are worth evaluating next* — fit the current response
surface, diagnose it, acquire the next batch (trust-region zoom,
space-filling infill, desirability exploitation, steepest-ascent
walks), and stop when the optimum stabilises.  State is journaled
durably beside the evaluation store (:mod:`repro.campaign.journal`),
so a killed campaign resumes mid-round with zero lost evaluations;
the ``repro-campaign`` console script (:mod:`repro.campaign.cli`)
surfaces run / status / resume / report to operators.
"""

from repro.campaign.acquisition import (
    ACQUISITIONS,
    AcquisitionStrategy,
    AutoAcquisition,
    DesirabilityExploit,
    FactorBox,
    Proposal,
    RoundContext,
    SpaceFillingInfill,
    SteepestAscent,
    TrustRegionZoom,
    resolve_acquisition,
)
from repro.campaign.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    Objective,
)
from repro.campaign.journal import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignJournal,
    CampaignRecord,
    FileCampaignJournal,
    MemoryCampaignJournal,
    RoundEntry,
    SQLiteCampaignJournal,
    journal_for_store,
    resolve_journal,
)

__all__ = [
    "ACQUISITIONS",
    "AcquisitionStrategy",
    "AutoAcquisition",
    "CAMPAIGN_SCHEMA_VERSION",
    "Campaign",
    "CampaignConfig",
    "CampaignJournal",
    "CampaignRecord",
    "CampaignResult",
    "DesirabilityExploit",
    "FactorBox",
    "FileCampaignJournal",
    "MemoryCampaignJournal",
    "Objective",
    "Proposal",
    "RoundContext",
    "RoundEntry",
    "SQLiteCampaignJournal",
    "SpaceFillingInfill",
    "SteepestAscent",
    "TrustRegionZoom",
    "journal_for_store",
    "resolve_journal",
    "resolve_acquisition",
]
