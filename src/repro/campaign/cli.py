"""``repro-campaign`` — operate adaptive campaigns from the shell.

A campaign is a long-lived, interruptible artefact: it may outlive
the process that started it, share its substrate with worker fleets,
and need inspection while (or after) it runs.  This CLI drives the
:mod:`repro.campaign` subsystem over the same one-path substrate the
store / queue / worker tools use::

    repro-campaign run    ~/evals.sqlite --evaluator mypkg.study:make_toolkit \
        --objective effective_data_rate --rounds 6 --budget 120
    repro-campaign status ~/evals.sqlite
    repro-campaign resume ~/evals.sqlite --evaluator mypkg.study:make_toolkit
    repro-campaign report ~/evals.sqlite --json

``run``/``resume`` need ``--evaluator``, a ``module:factory`` spec in
the :mod:`repro.exec.worker` style.  The factory is called with the
store path if it accepts one argument (the recommended shape — build
the toolkit with ``cache_dir=<store>`` so evaluations, work queue and
campaign journal share one substrate), else with no arguments; it
must return a :class:`~repro.core.toolkit.SensorNodeDesignToolkit`
(or any object exposing ``space``, ``responses`` and an ``explorer``).
``status`` and ``report`` read the journal alone — no evaluator, no
simulation.

Objectives: ``--objective NAME`` (maximized; add ``--minimize`` to
flip) optimizes one response; ``--desirability`` uses the toolkit's
canonical multi-response objective
(:func:`~repro.core.toolkit.standard_desirability`), and is the
default when no objective is named.

Exit codes: 0 on success (``run``/``resume``: the campaign finished —
converged or stopped), 1 on operator error, 2 from ``status`` when
the campaign is unfinished (so scripts can poll).
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.campaign.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    Objective,
)
from repro.campaign.journal import CampaignJournal, resolve_journal
from repro.errors import ReproError

PROG = "repro-campaign"


class CliError(Exception):
    """Operator-facing failure; message printed to stderr, exit 1."""


def load_toolkit(spec: str, store: str):
    """Build the evaluator toolkit from a ``module:factory`` spec.

    The factory is tried with the store path first (so it can point
    its ``cache_dir`` at the shared substrate), then with no
    arguments.
    """
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise CliError(
            f"evaluator spec {spec!r} is not of the form module:factory"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise CliError(
            f"cannot import evaluator module {module_name!r}: {error}"
        ) from error
    try:
        factory = getattr(module, attr)
    except AttributeError as error:
        raise CliError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from error
    if not callable(factory):
        raise CliError(f"{spec!r} is not callable")
    # Decide by arity, not by try/except TypeError — a TypeError
    # raised *inside* a store-aware factory must surface as that
    # factory's error, not trigger a zero-argument retry that then
    # fails with a misleading missing-argument message.
    import inspect

    try:
        takes_store = bool(
            inspect.signature(factory).parameters
        )
    except (TypeError, ValueError):  # builtins without signatures
        takes_store = False
    built = factory(store) if takes_store else factory()
    for required in ("space", "responses", "explorer"):
        if not hasattr(built, required):
            raise CliError(
                f"{spec!r} must return a toolkit-like object with "
                f"space/responses/explorer; got {type(built)!r}"
            )
    return built


def _objective_for(args: argparse.Namespace, toolkit) -> Objective:
    if args.objective is not None:
        if args.objective not in toolkit.responses:
            raise CliError(
                f"objective {args.objective!r} is not one of the "
                f"toolkit's responses: {sorted(toolkit.responses)}"
            )
        if args.minimize:
            return Objective.minimize_response(args.objective)
        return Objective.maximize_response(args.objective)
    from repro.core.toolkit import standard_desirability

    objective = Objective.of_desirability(standard_desirability())
    missing = set(objective.responses) - set(toolkit.responses)
    if missing:
        raise CliError(
            "the standard desirability needs responses this toolkit "
            f"does not model: {sorted(missing)}; name one with "
            "--objective instead"
        )
    return objective


def _config_for(args: argparse.Namespace) -> CampaignConfig:
    kwargs: dict = {}
    for name, attr in (
        ("max_rounds", "rounds"),
        ("batch", "batch"),
        ("budget", "budget"),
        ("seed", "seed"),
        ("optimum_tol", "tol"),
        ("cv_floor", "cv_floor"),
        ("shrink", "shrink"),
        ("acquisition", "acquisition"),
        ("initial_design", "initial_design"),
        ("model", "model"),
        ("eval_chunk", "eval_chunk"),
        ("pipeline_rounds", "pipeline"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            kwargs[name] = value
    return CampaignConfig(**kwargs)


def _open_journal(spec: str) -> CampaignJournal:
    """Resolve the journal beside an *existing* store path (the same
    no-substrate-springs-into-existence rule the other CLIs use)."""
    path = Path(spec)
    if not path.exists():
        raise CliError(
            f"no store at {spec!r} (a directory or *.sqlite/*.db file); "
            f"pass an existing substrate"
        )
    try:
        return resolve_journal(spec)
    except ReproError as error:
        raise CliError(str(error)) from error


def _emit_result(
    args: argparse.Namespace, result: CampaignResult
) -> None:
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(result.report())


def _build_campaign(
    args: argparse.Namespace, objective: Objective | None = None
) -> Campaign:
    toolkit = load_toolkit(args.evaluator, args.store)
    if objective is None:
        objective = _objective_for(args, toolkit)
    from repro.core.toolkit import DEFAULT_TRANSFORMS

    return Campaign(
        toolkit.explorer,
        objective,
        journal=resolve_journal(args.store),
        config=_config_for(args),
        campaign_id=args.campaign_id,
        transforms=DEFAULT_TRANSFORMS,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    campaign = _build_campaign(args)
    result = campaign.run(overwrite=args.fresh)
    _emit_result(args, result)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    # The journal's objective is authoritative on resume; read it
    # first so the operator does not have to restate --objective.
    journal = _open_journal(args.store)
    try:
        record = journal.load(args.campaign_id)
    finally:
        journal.close()
    if record is None:
        raise CliError(
            f"no campaign {args.campaign_id!r} to resume at "
            f"{args.store!r}; start one with `run`"
        )
    # The journaled configuration is authoritative — a resume under
    # different knobs could not continue deterministically.  Say so
    # instead of silently ignoring what the operator typed.
    overridden = [
        flag
        for flag, attr in (
            ("--rounds", "rounds"),
            ("--batch", "batch"),
            ("--budget", "budget"),
            ("--seed", "seed"),
            ("--tol", "tol"),
            ("--cv-floor", "cv_floor"),
            ("--shrink", "shrink"),
            ("--acquisition", "acquisition"),
            ("--initial-design", "initial_design"),
            ("--model", "model"),
            ("--eval-chunk", "eval_chunk"),
            ("--pipeline", "pipeline"),
            ("--objective", "objective"),
        )
        if getattr(args, attr, None) is not None
    ]
    if overridden:
        print(
            f"{PROG}: note: {', '.join(overridden)} ignored on resume — "
            "the journaled campaign configuration is authoritative "
            "(start a fresh campaign to change it)",
            file=sys.stderr,
        )
    objective = None
    if record.config.get("objective"):
        objective = Objective.from_spec(record.config["objective"])
    campaign = _build_campaign(args, objective=objective)
    result = campaign.resume()
    _emit_result(args, result)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    journal = _open_journal(args.store)
    try:
        records = journal.campaigns()
        if args.campaign_id != "default" or any(
            r.campaign_id == "default" for r in records
        ):
            records = [
                r for r in records if r.campaign_id == args.campaign_id
            ]
        if not records:
            raise CliError(
                f"no campaign {args.campaign_id!r} journaled at "
                f"{args.store!r}"
            )
        unfinished = False
        payload = []
        text = []
        for record in records:
            done = [r for r in record.rounds if r.status == "complete"]
            planned = [r for r in record.rounds if r.status == "planned"]
            last = done[-1].completed if done else None
            entry = {
                "campaign_id": record.campaign_id,
                "status": record.status,
                "rounds_complete": len(done),
                "rounds_planned": len(planned),
                "last_score": (last or {}).get("score"),
                "last_stop_reason": (last or {}).get("stop_reason"),
                "stop_reason": (record.result or {}).get("stop_reason"),
            }
            payload.append(entry)
            text.append(
                f"campaign {record.campaign_id}: {record.status}, "
                f"{len(done)} rounds complete"
                + (f", {len(planned)} in flight" if planned else "")
                + (
                    f", last score {entry['last_score']:.5g}"
                    if entry["last_score"] is not None
                    else ""
                )
                + (
                    f", stop: {entry['stop_reason']}"
                    if entry["stop_reason"]
                    else ""
                )
            )
            if record.status != "complete":
                unfinished = True
        if args.json:
            print(json.dumps({"campaigns": payload}, indent=2, sort_keys=True))
        else:
            for line in text:
                print(line)
        return 2 if unfinished else 0
    finally:
        journal.close()


def _cmd_report(args: argparse.Namespace) -> int:
    journal = _open_journal(args.store)
    try:
        record = journal.load(args.campaign_id)
        if record is None:
            raise CliError(
                f"no campaign {args.campaign_id!r} journaled at "
                f"{args.store!r}"
            )
        if record.result is None:
            raise CliError(
                f"campaign {args.campaign_id!r} has no final result yet "
                f"({record.status}); use status, or resume it to "
                "completion"
            )
        result = CampaignResult.from_payload(record.result)
        _emit_result(args, result)
        return 0
    finally:
        journal.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description=(
            "Run, resume and inspect adaptive design campaigns over a "
            "shared evaluation substrate."
        ),
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "store",
        help="substrate path: a directory or *.sqlite/*.db (store + "
        "queue + campaign journal in one place)",
    )
    common.add_argument(
        "--campaign-id", default="default", help="campaign identity"
    )
    common.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    driving = argparse.ArgumentParser(add_help=False)
    driving.add_argument(
        "--evaluator",
        required=True,
        help="module:factory returning the study toolkit (called with "
        "the store path when it accepts one argument)",
    )
    driving.add_argument(
        "--objective", default=None,
        help="response to optimize (default: the standard desirability)",
    )
    driving.add_argument(
        "--minimize", action="store_true",
        help="minimize --objective instead of maximizing",
    )
    driving.add_argument(
        "--rounds", type=int, default=None, help="max rounds"
    )
    driving.add_argument(
        "--batch", type=int, default=None, help="points per round"
    )
    driving.add_argument(
        "--budget", type=int, default=None,
        help="simulated-evaluation ceiling",
    )
    driving.add_argument(
        "--seed", type=int, default=None, help="base seed"
    )
    driving.add_argument(
        "--tol", type=float, default=None,
        help="optimum-shift convergence tolerance (coded units)",
    )
    driving.add_argument(
        "--cv-floor", type=float, default=None, dest="cv_floor",
        help="stop when normalized CV error falls to this",
    )
    driving.add_argument(
        "--shrink", type=float, default=None,
        help="trust-region zoom factor",
    )
    driving.add_argument(
        "--acquisition", default=None,
        help="acquisition strategy (auto/zoom/infill/exploit/ascent)",
    )
    driving.add_argument(
        "--initial-design", default=None, dest="initial_design",
        choices=("ccd", "lhs"), help="round-0 design",
    )
    driving.add_argument(
        "--model", default=None,
        choices=("linear", "interaction", "quadratic"),
        help="RSM form fitted each round",
    )
    driving.add_argument(
        "--eval-chunk", type=int, default=None, dest="eval_chunk",
        help="points per engine dispatch (durability grain)",
    )
    driving.add_argument(
        "--pipeline", action="store_true", default=None,
        help="overlap round r+1 speculation with round r stragglers "
        "(bit-identical history; see the campaign docs)",
    )

    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser(
        "run", parents=[common, driving],
        help="start a campaign and drive it to a stop criterion",
    )
    run.add_argument(
        "--fresh", action="store_true",
        help="overwrite an existing campaign of the same id",
    )
    run.set_defaults(func=_cmd_run)

    sub.add_parser(
        "resume", parents=[common, driving],
        help="continue a journaled campaign (zero lost evaluations)",
    ).set_defaults(func=_cmd_resume)

    sub.add_parser(
        "status", parents=[common],
        help="journal summary; exit 2 while unfinished",
    ).set_defaults(func=_cmd_status)

    sub.add_parser(
        "report", parents=[common],
        help="final result of a finished campaign",
    ).set_defaults(func=_cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (CliError, ReproError) as error:
        print(f"{PROG}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
