"""Aligned text tables.

One formatter used by every benchmark and report so the output style
is uniform: right-aligned numerics with sensible precision,
left-aligned text, a header rule, and an optional title.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 10.0 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned text table.

    Args:
        headers: column titles.
        rows: cell values (numbers are formatted, NaN renders as '-').
        title: optional line above the table.
        precision: significant digits for floats.
    """
    if not headers:
        raise ReproError("table needs headers")
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ReproError(
                f"row {i} has {len(row)} cells for {len(headers)} headers"
            )
    cells = [[_format_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    numeric = [
        all(
            isinstance(row[j], (int, float, bool))
            for row in rows
        )
        if rows
        else False
        for j in range(len(headers))
    ]

    def render_row(row: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(row):
            if numeric[j]:
                parts.append(cell.rjust(widths[j]))
            else:
                parts.append(cell.ljust(widths[j]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)
