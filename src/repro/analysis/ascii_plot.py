"""ASCII plotting for figure benchmarks.

Line plots for the R-F series (multiple series share one canvas,
distinguished by marker characters) and a density contour for the
response-surface figure.  Deliberately plain: the CSV written next to
every figure is the machine-readable artefact; these renderings exist
so a terminal user sees the *shape* immediately.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ReproError

_MARKERS = "ox+*#@%&"
_SHADES = " .:-=+*#%@"


def ascii_line_plot(
    series: Mapping[str, tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render one or more (x, y) series on a shared canvas.

    Args:
        series: name -> (x, y) arrays; each series gets the next
            marker character and a legend entry.
        width / height: canvas size in characters.
        x_label / y_label: axis captions.
        title: optional heading.
    """
    if not series:
        raise ReproError("need at least one series")
    if width < 16 or height < 6:
        raise ReproError("canvas too small to be legible")
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    finite = np.isfinite(xs_all) & np.isfinite(ys_all)
    if not np.any(finite):
        raise ReproError("no finite points to plot")
    x_min, x_max = float(xs_all[finite].min()), float(xs_all[finite].max())
    y_min, y_max = float(ys_all[finite].min()), float(ys_all[finite].max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, (x, y)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        for xv, yv in zip(x, y):
            if not (np.isfinite(xv) and np.isfinite(yv)):
                continue
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            canvas[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top {y_max:.4g}, bottom {y_min:.4g})")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.4g} .. {x_max:.4g}")
    lines.append(" legend: " + "   ".join(legend))
    return "\n".join(lines)


def ascii_contour(
    grid: np.ndarray,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    width: int = 64,
    height: int = 24,
    title: str | None = None,
) -> str:
    """Render a 2-D scalar field as shaded ASCII density.

    Args:
        grid: (ny, nx) values; row 0 is the *lowest* y (plotted at the
            bottom).
        x_range / y_range: physical extents for the axis captions.
        width / height: output size (the grid is nearest-neighbour
            resampled).
        title: optional heading.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2 or grid.size == 0:
        raise ReproError("grid must be 2-D and non-empty")
    finite = np.isfinite(grid)
    if not np.any(finite):
        raise ReproError("no finite grid values")
    lo = float(grid[finite].min())
    hi = float(grid[finite].max())
    span = hi - lo if hi > lo else 1.0
    ny, nx = grid.shape
    rows = []
    for r in range(height):
        src_y = int(round((height - 1 - r) / max(height - 1, 1) * (ny - 1)))
        line = []
        for c in range(width):
            src_x = int(round(c / max(width - 1, 1) * (nx - 1)))
            value = grid[src_y, src_x]
            if not np.isfinite(value):
                line.append("?")
                continue
            shade = int((value - lo) / span * (len(_SHADES) - 1))
            line.append(_SHADES[shade])
        rows.append("|" + "".join(line))
    lines = []
    if title:
        lines.append(title)
    lines.append(f"value: {lo:.4g} (' ') .. {hi:.4g} ('@')")
    lines.extend(rows)
    lines.append("+" + "-" * width)
    lines.append(
        f" x: {x_range[0]:.4g} .. {x_range[1]:.4g}   "
        f"y: {y_range[0]:.4g} .. {y_range[1]:.4g} (bottom..top)"
    )
    return "\n".join(lines)
