"""CSV output for figure/table data.

Every benchmark writes its series under ``results/`` so the numbers
behind each reconstructed figure are inspectable and re-plottable
elsewhere; these helpers keep the format and destination uniform.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.fsutil import atomic_writer


def ensure_results_dir(base: str | None = None) -> str:
    """Create (if needed) and return the results directory path.

    Defaults to ``results/`` under the current working directory, or
    the ``REPRO_RESULTS_DIR`` environment variable when set.
    """
    path = base or os.environ.get("REPRO_RESULTS_DIR") or "results"
    os.makedirs(path, exist_ok=True)
    return path


def write_csv(
    filename: str,
    columns: Mapping[str, Sequence[float]] | Mapping[str, np.ndarray],
    directory: str | None = None,
) -> str:
    """Write named columns to ``results/<filename>``; returns the path.

    All columns must share one length; values are written with full
    repr precision so downstream plotting loses nothing.
    """
    if not columns:
        raise ReproError("write_csv needs at least one column")
    lengths = {name: len(vals) for name, vals in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ReproError(f"column lengths differ: {lengths}")
    directory = ensure_results_dir(directory)
    path = os.path.join(directory, filename)
    names = list(columns)
    n = lengths[names[0]]
    # Atomic publish: a reader (or a re-plot racing a benchmark) must
    # never observe a half-written series.
    with atomic_writer(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(n):
            writer.writerow([repr(float(columns[name][i])) for name in names])
    return path
