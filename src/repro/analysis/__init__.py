"""Reporting and plotting helpers.

No plotting stack is available offline, so "figures" are produced as
CSV series (:mod:`repro.analysis.io`) plus ASCII renderings
(:mod:`repro.analysis.ascii_plot`), and tables as aligned text
(:mod:`repro.analysis.tables`).
"""

from repro.analysis.tables import format_table
from repro.analysis.ascii_plot import ascii_line_plot, ascii_contour
from repro.analysis.io import write_csv, ensure_results_dir

__all__ = [
    "format_table",
    "ascii_line_plot",
    "ascii_contour",
    "write_csv",
    "ensure_results_dir",
]
