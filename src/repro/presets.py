"""Canonical system presets.

Factory functions building complete :class:`~repro.sim.system.SystemConfig`
instances for the calibrated device described in DESIGN.md, with the
knobs the DoE study sweeps exposed as keyword arguments.  The
benchmark scenarios SC1-SC3 and the examples all start from here so the
physical assumptions live in exactly one place.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.harvester.actuator import TuningActuator
from repro.harvester.parameters import MicrogeneratorParameters
from repro.harvester.tuning import MagneticTuningLaw, TunableHarvester
from repro.node.controller import TuningController
from repro.node.node import SensorNode
from repro.node.policies import DutyCyclePolicy, FixedPeriodPolicy
from repro.power.rectifier import (
    build_bridge_circuit,
    build_multiplier_circuit,
)
from repro.power.regulator import Regulator
from repro.power.supercap import Supercapacitor
from repro.sim.system import SystemConfig
from repro.vibration.profiles import (
    bridge_profile,
    duty_shift_profile,
    machine_room_profile,
)
from repro.vibration.sources import SineVibration, VibrationSource


def default_harvester() -> TunableHarvester:
    """The calibrated tunable microgenerator (64-78 Hz band)."""
    return TunableHarvester(
        params=MicrogeneratorParameters(),
        tuning=MagneticTuningLaw(),
        actuator=TuningActuator(),
    )


def default_system(
    capacitance: float = 0.40,
    tx_interval: float = 10.0,
    dead_band: float = 1.0,
    check_interval: float = 120.0,
    payload_bits: int = 256,
    vibration: VibrationSource | None = None,
    policy: DutyCyclePolicy | None = None,
    v_initial: float = 2.6,
    with_controller: bool = True,
    topology: str = "bridge",
    n_stages: int = 1,
    harvester: TunableHarvester | None = None,
) -> SystemConfig:
    """The canonical node with the 5-factor design knobs exposed.

    Args:
        capacitance: supercapacitor size, F (factor C_store).
        tx_interval: fixed reporting period, s (factor T_tx; ignored
            when an explicit ``policy`` is supplied).
        dead_band: tuning-controller dead band, Hz (factor df_dead).
        check_interval: controller wake period, s (factor T_check).
        payload_bits: report payload size, bits (factor payload_bits).
        vibration: ambient excitation (default: 67 Hz sine at 0.6 m/s^2,
            the machine-tone test condition).
        policy: duty-cycle policy overriding the fixed ``tx_interval``.
        v_initial: store voltage at t=0, V.
        with_controller: include the tuning controller.
        topology: ``"bridge"`` (default; the volts-class EMF device
            drives it directly and both transient engines agree on it)
            or ``"multiplier"`` (the companion paper's charge-pump path;
            simulate it with the Newton engine — see the fidelity
            finding in DESIGN.md).
        n_stages: multiplier stages when ``topology="multiplier"``.
        harvester: pre-built harvester to reuse (the batch evaluation
            path shares one immutable harvester across design points
            instead of rebuilding it per call).
    """
    if harvester is None:
        harvester = default_harvester()
    supercap = Supercapacitor(capacitance=capacitance, v_initial=v_initial)
    if topology == "multiplier":
        power = build_multiplier_circuit(supercap, n_stages=n_stages)
    elif topology == "bridge":
        power = build_bridge_circuit(supercap)
    else:
        raise ModelError(f"unknown power topology {topology!r}")
    regulator = Regulator()
    node = SensorNode(
        policy=policy if policy is not None else FixedPeriodPolicy(tx_interval),
        payload_bits=payload_bits,
    )
    controller = (
        TuningController(check_interval=check_interval, dead_band=dead_band)
        if with_controller
        else None
    )
    source = (
        vibration
        if vibration is not None
        else SineVibration(amplitude=0.6, frequency=67.0)
    )
    return SystemConfig(
        harvester=harvester,
        power=power,
        regulator=regulator,
        node=node,
        controller=controller,
        vibration=source,
    )


def scenario_system(name: str, **overrides) -> SystemConfig:
    """The three benchmark scenarios (R-SC1..R-SC3).

    * ``"structural"`` — SC1: stationary narrow-band excitation
      (bridge profile); throughput-oriented settings.
    * ``"drift"`` — SC2: machine tone drifting upward through the
      tuning band; controller parameters matter most here.
    * ``"burst"`` — SC3: stepped operating points with a fast
      reporting demand; storage sizing dominates.

    Keyword overrides are forwarded to :func:`default_system`.
    """
    if name == "structural":
        defaults = dict(
            vibration=bridge_profile(),
            tx_interval=5.0,
            dead_band=1.5,
            check_interval=300.0,
        )
    elif name == "drift":
        # Slow thermal/structural drift (7 Hz/hour).  The harvester's
        # usable charging band at conduction is only about +-0.5 Hz
        # (hard EMF-vs-store-voltage threshold), so the controller must
        # keep the mismatch tight: 0.4 Hz dead band, 60 s checks.
        defaults = dict(
            vibration=machine_room_profile(
                base_frequency=66.0, drift_hz=4.0, drift_rate=0.002
            ),
            tx_interval=15.0,
            dead_band=0.4,
            check_interval=60.0,
        )
    elif name == "burst":
        defaults = dict(
            vibration=duty_shift_profile(),
            tx_interval=3.0,
            capacitance=0.68,
            dead_band=1.0,
            check_interval=90.0,
        )
    else:
        raise ModelError(
            f"unknown scenario {name!r}; pick structural, drift or burst"
        )
    defaults.update(overrides)
    return default_system(**defaults)
