"""repro — DoE/RSM design-space exploration for harvester-powered sensor nodes.

A from-scratch reproduction of *"DoE-based performance optimization of
energy management in sensor nodes powered by tunable energy-harvesters"*
(Kazmierski, Wang, Al-Hashimi, Merrett — DATE 2013) and the substrates
it builds on: the tunable electromagnetic microgenerator, the
diode-based power-processing chain, the duty-cycled wireless sensor
node, the explicit linearized state-space simulation engine, and the
design-of-experiments / response-surface toolkit that makes the design
space explorable "practically instantly".

Quickstart::

    from repro import default_system, MissionConfig, simulate

    config = default_system()
    result = simulate(config, MissionConfig(t_end=1800.0, engine="envelope"))
    print(result.summary())

See :mod:`repro.core.toolkit` for the paper's DoE flow end-to-end.
"""

from repro.errors import (
    ReproError,
    ModelError,
    SimulationError,
    DesignError,
    FitError,
    OptimizationError,
)
from repro.harvester import (
    MicrogeneratorParameters,
    Microgenerator,
    MagneticTuningLaw,
    TunableHarvester,
    TuningActuator,
)
from repro.power import (
    Diode,
    Supercapacitor,
    Regulator,
    build_bridge_circuit,
    build_doubler_circuit,
    build_multiplier_circuit,
    build_resistive_load_circuit,
)
from repro.node import (
    MCUModel,
    RadioModel,
    SensorModel,
    SensorNode,
    TuningController,
    FixedPeriodPolicy,
    ThresholdAdaptivePolicy,
    EnergyNeutralPolicy,
)
from repro.vibration import (
    SineVibration,
    MultiToneVibration,
    DriftingSineVibration,
    SteppedFrequencyVibration,
    BandNoiseVibration,
    CompositeVibration,
)
from repro.sim import (
    SystemConfig,
    SystemModel,
    SimulationResult,
    MissionConfig,
    simulate,
)
from repro.indicators import (
    evaluate_indicators,
    indicator_names,
    register_indicator,
)
from repro.presets import default_system, scenario_system

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ModelError",
    "SimulationError",
    "DesignError",
    "FitError",
    "OptimizationError",
    "MicrogeneratorParameters",
    "Microgenerator",
    "MagneticTuningLaw",
    "TunableHarvester",
    "TuningActuator",
    "Diode",
    "Supercapacitor",
    "Regulator",
    "build_bridge_circuit",
    "build_doubler_circuit",
    "build_multiplier_circuit",
    "build_resistive_load_circuit",
    "MCUModel",
    "RadioModel",
    "SensorModel",
    "SensorNode",
    "TuningController",
    "FixedPeriodPolicy",
    "ThresholdAdaptivePolicy",
    "EnergyNeutralPolicy",
    "SineVibration",
    "MultiToneVibration",
    "DriftingSineVibration",
    "SteppedFrequencyVibration",
    "BandNoiseVibration",
    "CompositeVibration",
    "SystemConfig",
    "SystemModel",
    "SimulationResult",
    "MissionConfig",
    "simulate",
    "evaluate_indicators",
    "indicator_names",
    "register_indicator",
    "default_system",
    "scenario_system",
    "__version__",
]
