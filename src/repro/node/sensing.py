"""Sensing peripheral model.

One measurement acquisition: the transducer plus ADC path draws
``current`` for ``acquisition_time``.  Values default to a
temperature/strain class sensor; the accelerometer capture used by the
*tuning controller* is a separate, longer acquisition configured in
:class:`repro.node.controller.TuningController`.
"""

from __future__ import annotations

from repro.errors import ModelError


class SensorModel:
    """Sensing-acquisition parameters.

    Args:
        current: supply current while sampling, A.
        acquisition_time: time to acquire one measurement, s.
    """

    def __init__(
        self,
        current: float = 0.8e-3,
        acquisition_time: float = 3.0e-3,
    ):
        if current <= 0.0:
            raise ModelError(f"current must be > 0, got {current}")
        if acquisition_time <= 0.0:
            raise ModelError(
                f"acquisition_time must be > 0, got {acquisition_time}"
            )
        self.current = float(current)
        self.acquisition_time = float(acquisition_time)

    def power(self, v_rail: float) -> float:
        """Sampling power at the rail voltage, watts."""
        if v_rail <= 0.0:
            raise ModelError(f"rail voltage must be > 0, got {v_rail}")
        return self.current * v_rail

    def energy(self, v_rail: float) -> float:
        """Energy per acquisition, joules."""
        return self.power(v_rail) * self.acquisition_time
