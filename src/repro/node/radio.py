"""Packet-radio energy model.

Transmit-mostly link typical of harvester-powered reporting nodes
(CC2500 / nRF24-class): a startup transient followed by an on-air time
set by the payload and the physical-layer overhead.  Receive support
exists for acknowledged-traffic studies but defaults to off in the
measurement cycle.
"""

from __future__ import annotations

from repro.errors import ModelError


class RadioModel:
    """Radio timing/energy parameters.

    Args:
        tx_current: transmit supply current, A.
        rx_current: receive supply current, A.
        startup_time: oscillator/PLL settle time before air time, s.
        bitrate: physical-layer bitrate, bit/s.
        overhead_bits: preamble + sync + header + CRC bits per packet.
    """

    def __init__(
        self,
        tx_current: float = 20.0e-3,
        rx_current: float = 18.0e-3,
        startup_time: float = 0.5e-3,
        bitrate: float = 250.0e3,
        overhead_bits: int = 144,
    ):
        if tx_current <= 0.0:
            raise ModelError(f"tx_current must be > 0, got {tx_current}")
        if rx_current <= 0.0:
            raise ModelError(f"rx_current must be > 0, got {rx_current}")
        if startup_time < 0.0:
            raise ModelError(f"startup_time must be >= 0, got {startup_time}")
        if bitrate <= 0.0:
            raise ModelError(f"bitrate must be > 0, got {bitrate}")
        if overhead_bits < 0:
            raise ModelError(f"overhead_bits must be >= 0, got {overhead_bits}")
        self.tx_current = float(tx_current)
        self.rx_current = float(rx_current)
        self.startup_time = float(startup_time)
        self.bitrate = float(bitrate)
        self.overhead_bits = int(overhead_bits)

    def airtime(self, payload_bits: int) -> float:
        """On-air transmit time for one packet, seconds."""
        if payload_bits <= 0:
            raise ModelError(f"payload_bits must be > 0, got {payload_bits}")
        return (payload_bits + self.overhead_bits) / self.bitrate

    def tx_time(self, payload_bits: int) -> float:
        """Total radio-on time for one transmission, seconds."""
        return self.startup_time + self.airtime(payload_bits)

    def tx_power(self, v_rail: float) -> float:
        """Transmit-mode power at the rail voltage, watts."""
        self._check_rail(v_rail)
        return self.tx_current * v_rail

    def tx_energy(self, payload_bits: int, v_rail: float) -> float:
        """Energy for one transmission, joules."""
        return self.tx_power(v_rail) * self.tx_time(payload_bits)

    def rx_power(self, v_rail: float) -> float:
        """Receive-mode power at the rail voltage, watts."""
        self._check_rail(v_rail)
        return self.rx_current * v_rail

    @staticmethod
    def _check_rail(v_rail: float) -> None:
        if v_rail <= 0.0:
            raise ModelError(f"rail voltage must be > 0, got {v_rail}")
