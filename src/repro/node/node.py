"""Sensor-node composition.

:class:`SensorNode` bundles the MCU, radio, sensor, payload size and
duty-cycle policy into the load model the simulators drive, and offers
the small analytic helpers the design flow needs (cycle energy, average
power at a given period, the shortest sustainable period for a given
harvest level).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.node.mcu import MCUModel
from repro.node.policies import DutyCyclePolicy, FixedPeriodPolicy
from repro.node.radio import RadioModel
from repro.node.sensing import SensorModel
from repro.node.tasks import (
    TaskPhase,
    measurement_phases,
    phases_duration,
    phases_energy,
)


class SensorNode:
    """The complete load-side node.

    Args:
        mcu: microcontroller model.
        radio: radio model.
        sensor: sensing peripheral model.
        policy: duty-cycle policy (defaults to a 10 s fixed period).
        payload_bits: application payload per report, bits.
        v_rail: regulated rail voltage the phases are computed at, V.
    """

    def __init__(
        self,
        mcu: MCUModel | None = None,
        radio: RadioModel | None = None,
        sensor: SensorModel | None = None,
        policy: DutyCyclePolicy | None = None,
        payload_bits: int = 256,
        v_rail: float = 3.0,
    ):
        if payload_bits <= 0:
            raise ModelError(f"payload_bits must be > 0, got {payload_bits}")
        if v_rail <= 0.0:
            raise ModelError(f"v_rail must be > 0, got {v_rail}")
        self.mcu = mcu if mcu is not None else MCUModel()
        self.radio = radio if radio is not None else RadioModel()
        self.sensor = sensor if sensor is not None else SensorModel()
        self.policy = policy if policy is not None else FixedPeriodPolicy(10.0)
        self.payload_bits = int(payload_bits)
        self.v_rail = float(v_rail)
        self._phases = measurement_phases(
            self.mcu, self.radio, self.sensor, self.payload_bits, self.v_rail
        )

    @property
    def phases(self) -> tuple[TaskPhase, ...]:
        """The measurement cycle's phases at the configured rail."""
        return self._phases

    @property
    def cycle_energy(self) -> float:
        """Rail-side energy of one measurement cycle, joules."""
        return phases_energy(self._phases)

    @property
    def cycle_duration(self) -> float:
        """Duration of one measurement cycle, seconds."""
        return phases_duration(self._phases)

    @property
    def sleep_power(self) -> float:
        """Rail-side power between cycles, watts."""
        return self.mcu.sleep_power(self.v_rail)

    def average_power(self, period: float) -> float:
        """Rail-side average power at a fixed reporting period, watts.

        ``P = E_cycle / T + P_sleep`` (the sleep share of the cycle
        window is negligible and kept out for clarity; tests check the
        approximation is within the cycle/period ratio).
        """
        if period <= 0.0:
            raise ModelError(f"period must be > 0, got {period}")
        if period < self.cycle_duration:
            raise ModelError(
                f"period ({period} s) shorter than the cycle itself "
                f"({self.cycle_duration} s)"
            )
        return self.cycle_energy / period + self.sleep_power

    def min_sustainable_period(self, available_power: float) -> float:
        """Shortest fixed period a given rail-side power budget allows, s.

        Inverts :meth:`average_power`; raises if even an idle node
        (sleep only) exceeds the budget.
        """
        if available_power <= self.sleep_power:
            raise ModelError(
                f"available power {available_power} W cannot cover sleep "
                f"power {self.sleep_power} W"
            )
        period = self.cycle_energy / (available_power - self.sleep_power)
        return max(period, self.cycle_duration)

    def data_rate(self, period: float) -> float:
        """Application payload throughput at a fixed period, bit/s."""
        if period <= 0.0:
            raise ModelError(f"period must be > 0, got {period}")
        return self.payload_bits / period

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"node: cycle {self.cycle_energy * 1e6:.0f} uJ / "
            f"{self.cycle_duration * 1e3:.1f} ms, sleep "
            f"{self.sleep_power * 1e6:.1f} uW, payload {self.payload_bits} b, "
            f"policy {self.policy.describe()}"
        )
