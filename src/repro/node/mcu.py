"""Microcontroller power-state model.

A two-state (sleep / active) MCU abstraction of the MSP430-class parts
used in published harvester-powered nodes: microamp sleep with a
wake-up transient, milliamp active.  Power numbers are computed at the
regulated rail voltage supplied by the caller, keeping the model
independent of the regulator configuration.
"""

from __future__ import annotations

from repro.errors import ModelError


class MCUModel:
    """Sleep/active MCU current model.

    Args:
        sleep_current: deep-sleep supply current, A (RTC running).
        active_current: run-mode supply current, A.
        wake_time: time to go from sleep to stable run mode, s.
        process_time: CPU time spent packing/compressing one
            measurement before transmission, s.
    """

    def __init__(
        self,
        sleep_current: float = 2.0e-6,
        active_current: float = 2.0e-3,
        wake_time: float = 1.0e-3,
        process_time: float = 2.0e-3,
    ):
        if sleep_current < 0.0:
            raise ModelError(f"sleep_current must be >= 0, got {sleep_current}")
        if active_current <= sleep_current:
            raise ModelError(
                "active_current must exceed sleep_current "
                f"({active_current} vs {sleep_current})"
            )
        if wake_time < 0.0:
            raise ModelError(f"wake_time must be >= 0, got {wake_time}")
        if process_time < 0.0:
            raise ModelError(f"process_time must be >= 0, got {process_time}")
        self.sleep_current = float(sleep_current)
        self.active_current = float(active_current)
        self.wake_time = float(wake_time)
        self.process_time = float(process_time)

    def sleep_power(self, v_rail: float) -> float:
        """Sleep-mode power at the given rail voltage, watts."""
        self._check_rail(v_rail)
        return self.sleep_current * v_rail

    def active_power(self, v_rail: float) -> float:
        """Run-mode power at the given rail voltage, watts."""
        self._check_rail(v_rail)
        return self.active_current * v_rail

    @staticmethod
    def _check_rail(v_rail: float) -> None:
        if v_rail <= 0.0:
            raise ModelError(f"rail voltage must be > 0, got {v_rail}")
