"""Duty-cycle policies.

A policy decides, at the end of each measurement cycle, how long the
node sleeps before the next cycle, based on the state of the energy
store.  The three policies span the design space the paper's scenarios
explore:

* :class:`FixedPeriodPolicy` — the baseline: report every ``T`` seconds
  regardless of energy (maximum data value, maximum brownout risk).
* :class:`ThresholdAdaptivePolicy` — a memoryless linear schedule: the
  period stretches from ``period_min`` at a comfortable store voltage
  to ``period_max`` near the brownout threshold.
* :class:`EnergyNeutralPolicy` — a multiplicative-increase /
  multiplicative-decrease controller that servos the store voltage
  toward a target, the discrete-time analogue of the energy-neutral
  operation literature.  It carries internal state and must be
  ``reset()`` between missions (the simulators do this).

Policies are deliberately small, deterministic state machines: they are
*design parameters* in the DoE study (policy choice and its constants),
so their behaviour must be exactly reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ModelError


class DutyCyclePolicy(ABC):
    """Decides the sleep interval until the next measurement cycle."""

    @abstractmethod
    def next_period(self, v_store: float, t: float) -> float:
        """Seconds to sleep after the cycle that just completed.

        Args:
            v_store: present store (internal supercap) voltage, V.
            t: mission time, s (policies may ignore it).
        """

    def reset(self) -> None:
        """Clear internal state at mission start (default: stateless)."""

    def describe(self) -> str:
        """Short human-readable description for reports."""
        return type(self).__name__


class FixedPeriodPolicy(DutyCyclePolicy):
    """Constant reporting period."""

    def __init__(self, period: float):
        if period <= 0.0:
            raise ModelError(f"period must be > 0, got {period}")
        self.period = float(period)

    def next_period(self, v_store: float, t: float) -> float:
        return self.period

    def describe(self) -> str:
        return f"fixed({self.period:g} s)"


class ThresholdAdaptivePolicy(DutyCyclePolicy):
    """Memoryless linear schedule between two store-voltage thresholds.

    At or above ``v_high`` the node reports every ``period_min``; at or
    below ``v_low`` it slows to ``period_max``; in between the period
    interpolates linearly.  ``v_low`` is normally set just above the
    regulator's restart threshold so the policy backs off before
    brownout does it the hard way.
    """

    def __init__(
        self,
        period_min: float,
        period_max: float,
        v_low: float = 2.6,
        v_high: float = 4.0,
    ):
        if period_min <= 0.0:
            raise ModelError(f"period_min must be > 0, got {period_min}")
        if period_max < period_min:
            raise ModelError(
                f"period_max ({period_max}) must be >= period_min ({period_min})"
            )
        if v_high <= v_low:
            raise ModelError(
                f"v_high ({v_high}) must exceed v_low ({v_low})"
            )
        self.period_min = float(period_min)
        self.period_max = float(period_max)
        self.v_low = float(v_low)
        self.v_high = float(v_high)

    def next_period(self, v_store: float, t: float) -> float:
        if v_store >= self.v_high:
            return self.period_min
        if v_store <= self.v_low:
            return self.period_max
        frac = (self.v_high - v_store) / (self.v_high - self.v_low)
        return self.period_min + frac * (self.period_max - self.period_min)

    def describe(self) -> str:
        return (
            f"threshold({self.period_min:g}-{self.period_max:g} s over "
            f"{self.v_low:g}-{self.v_high:g} V)"
        )


class EnergyNeutralPolicy(DutyCyclePolicy):
    """Multiplicative controller servoing the store voltage to a target.

    After each cycle the period is multiplied by
    ``exp(-gain * (v_store - v_target))`` and clamped to
    ``[period_min, period_max]``: above target it speeds up, below it
    backs off.  The exponential form makes the response symmetric in
    log-period, so recovery from a deficit is as fast as the descent
    into it.
    """

    def __init__(
        self,
        v_target: float = 3.3,
        gain: float = 2.0,
        period_min: float = 1.0,
        period_max: float = 300.0,
        period_initial: float | None = None,
    ):
        if v_target <= 0.0:
            raise ModelError(f"v_target must be > 0, got {v_target}")
        if gain <= 0.0:
            raise ModelError(f"gain must be > 0, got {gain}")
        if period_min <= 0.0:
            raise ModelError(f"period_min must be > 0, got {period_min}")
        if period_max < period_min:
            raise ModelError(
                f"period_max ({period_max}) must be >= period_min ({period_min})"
            )
        self.v_target = float(v_target)
        self.gain = float(gain)
        self.period_min = float(period_min)
        self.period_max = float(period_max)
        if period_initial is None:
            period_initial = (period_min * period_max) ** 0.5
        if not (period_min <= period_initial <= period_max):
            raise ModelError(
                f"period_initial ({period_initial}) outside "
                f"[{period_min}, {period_max}]"
            )
        self.period_initial = float(period_initial)
        self._period = self.period_initial

    def reset(self) -> None:
        self._period = self.period_initial

    @property
    def current_period(self) -> float:
        """The period the controller currently holds (for inspection)."""
        return self._period

    def next_period(self, v_store: float, t: float) -> float:
        import math

        factor = math.exp(-self.gain * (v_store - self.v_target))
        self._period = min(
            max(self._period * factor, self.period_min), self.period_max
        )
        return self._period

    def describe(self) -> str:
        return (
            f"energy-neutral(target {self.v_target:g} V, gain {self.gain:g}, "
            f"{self.period_min:g}-{self.period_max:g} s)"
        )
