"""Measurement task cycle.

One reporting cycle of the node firmware is a fixed sequence of phases
(wake, sense, process, transmit), each with a duration and a rail-side
power.  The full-fidelity engines play the phases as piecewise-constant
loads; the envelope engine collapses them to a single energy
withdrawal.  Both views are derived from the same
:func:`measurement_phases` list so they cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ModelError
from repro.node.mcu import MCUModel
from repro.node.radio import RadioModel
from repro.node.sensing import SensorModel


@dataclass(frozen=True)
class TaskPhase:
    """One phase of the measurement cycle.

    Attributes:
        name: phase label ("wake", "sense", "process", "tx").
        duration: phase length, s (> 0).
        power: rail-side power during the phase, W (>= 0).
    """

    name: str
    duration: float
    power: float

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ModelError(
                f"phase {self.name!r}: duration must be > 0, got {self.duration}"
            )
        if self.power < 0.0:
            raise ModelError(
                f"phase {self.name!r}: power must be >= 0, got {self.power}"
            )

    @property
    def energy(self) -> float:
        """Phase energy, joules."""
        return self.duration * self.power


def measurement_phases(
    mcu: MCUModel,
    radio: RadioModel,
    sensor: SensorModel,
    payload_bits: int,
    v_rail: float,
) -> tuple[TaskPhase, ...]:
    """The canonical wake -> sense -> process -> transmit cycle.

    Phase powers stack the concurrently active peripherals on top of
    the MCU run current, as the real firmware keeps the CPU awake while
    driving them.
    """
    phases = []
    if mcu.wake_time > 0.0:
        phases.append(TaskPhase("wake", mcu.wake_time, mcu.active_power(v_rail)))
    phases.append(
        TaskPhase(
            "sense",
            sensor.acquisition_time,
            mcu.active_power(v_rail) + sensor.power(v_rail),
        )
    )
    if mcu.process_time > 0.0:
        phases.append(
            TaskPhase("process", mcu.process_time, mcu.active_power(v_rail))
        )
    phases.append(
        TaskPhase(
            "tx",
            radio.tx_time(payload_bits),
            mcu.active_power(v_rail) + radio.tx_power(v_rail),
        )
    )
    return tuple(phases)


def phases_energy(phases: Sequence[TaskPhase]) -> float:
    """Total energy of a phase sequence, joules."""
    return sum(phase.energy for phase in phases)


def phases_duration(phases: Sequence[TaskPhase]) -> float:
    """Total duration of a phase sequence, seconds."""
    return sum(phase.duration for phase in phases)
