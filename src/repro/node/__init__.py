"""Wireless sensor node substrate.

Models the load side of the system: an MCU with sleep/active states, a
packet radio, a sensing peripheral, the measurement task cycle built
from them, duty-cycle policies that decide how often the cycle runs,
and the tuning-controller firmware that decides when to spend stored
energy re-tuning the harvester.
"""

from repro.node.mcu import MCUModel
from repro.node.radio import RadioModel
from repro.node.sensing import SensorModel
from repro.node.tasks import TaskPhase, measurement_phases, phases_energy, phases_duration
from repro.node.policies import (
    DutyCyclePolicy,
    FixedPeriodPolicy,
    ThresholdAdaptivePolicy,
    EnergyNeutralPolicy,
)
from repro.node.node import SensorNode
from repro.node.controller import TuningController, TuningDecision

__all__ = [
    "MCUModel",
    "RadioModel",
    "SensorModel",
    "TaskPhase",
    "measurement_phases",
    "phases_energy",
    "phases_duration",
    "DutyCyclePolicy",
    "FixedPeriodPolicy",
    "ThresholdAdaptivePolicy",
    "EnergyNeutralPolicy",
    "SensorNode",
    "TuningController",
    "TuningDecision",
]
