"""Tuning-controller firmware model.

The controller wakes every ``check_interval`` seconds, captures a short
accelerometer record, estimates the dominant ambient frequency, and
decides whether the mismatch against the harvester's present resonance
justifies spending actuation energy on a retune.  Its three knobs —
check interval, dead band, and the capture configuration — are design
factors in the paper's study: checking too often or retuning on noise
wastes energy, while a wide dead band leaves the harvester mistuned.

The controller is a *decision* model: the system simulators own the
store bookkeeping and the actuation timeline; :meth:`TuningController.decide`
only answers "measure, and should we move, and to where".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.harvester.tuning import TunableHarvester
from repro.vibration.sources import VibrationSource
from repro.vibration.spectrum import estimate_dominant_frequency


@dataclass(frozen=True)
class TuningDecision:
    """Outcome of one controller wake-up.

    Attributes:
        t: decision time, s.
        f_estimate: estimated dominant frequency, Hz.
        f_resonance: harvester resonance at decision time, Hz.
        retune: whether an actuation was commanded.
        target_gap: commanded magnet gap (equals the current gap when
            ``retune`` is False), m.
        measurement_energy: rail-side energy spent on the capture, J.
    """

    t: float
    f_estimate: float
    f_resonance: float
    retune: bool
    target_gap: float
    measurement_energy: float


class TuningController:
    """Periodic dominant-frequency check with dead-band retune logic.

    Args:
        check_interval: seconds between controller wake-ups.
        dead_band: retune only when |f_est - f_res| exceeds this, Hz.
        capture_time: accelerometer capture length, s (sets the
            estimator's resolution).
        sample_rate: accelerometer sampling rate, Hz.
        method: ``"fft"`` or ``"zero-crossing"`` estimator.
        measurement_power: rail-side power while capturing (MCU active +
            a micro-power MEMS accelerometer), W.  Keep this low: the
            capture energy is a recurring tax on the harvest, and at
            the canonical check interval it must stay well under the
            tuned harvesting power for the controller to pay off.
        first_check: time of the first wake-up, s (defaults to one
            interval after start; scenario benches shorten it).
    """

    def __init__(
        self,
        check_interval: float = 120.0,
        dead_band: float = 1.0,
        capture_time: float = 0.5,
        sample_rate: float = 1024.0,
        method: str = "fft",
        measurement_power: float = 1.0e-3,
        first_check: float | None = None,
    ):
        if check_interval <= 0.0:
            raise ModelError(
                f"check_interval must be > 0, got {check_interval}"
            )
        if dead_band < 0.0:
            raise ModelError(f"dead_band must be >= 0, got {dead_band}")
        if capture_time <= 0.0:
            raise ModelError(f"capture_time must be > 0, got {capture_time}")
        if sample_rate <= 0.0:
            raise ModelError(f"sample_rate must be > 0, got {sample_rate}")
        if method not in ("fft", "zero-crossing"):
            raise ModelError(f"unknown estimator method {method!r}")
        if measurement_power < 0.0:
            raise ModelError(
                f"measurement_power must be >= 0, got {measurement_power}"
            )
        if first_check is not None and first_check < 0.0:
            raise ModelError(f"first_check must be >= 0, got {first_check}")
        self.check_interval = float(check_interval)
        self.dead_band = float(dead_band)
        self.capture_time = float(capture_time)
        self.sample_rate = float(sample_rate)
        self.method = method
        self.measurement_power = float(measurement_power)
        self.first_check = (
            float(first_check) if first_check is not None else float(check_interval)
        )

    @property
    def measurement_energy(self) -> float:
        """Rail-side energy of one capture, joules."""
        return self.measurement_power * self.capture_time

    def decide(
        self,
        t: float,
        source: VibrationSource,
        harvester: TunableHarvester,
        current_gap: float,
    ) -> TuningDecision:
        """Run one wake-up: estimate, compare, command.

        The estimate is obtained by "capturing" the actual vibration
        source (the model's accelerometer sees the true waveform); the
        retune target is the gap whose resonance best matches the
        estimate, clamped to the achievable band.
        """
        f_est = estimate_dominant_frequency(
            source,
            t_start=t,
            capture_time=self.capture_time,
            sample_rate=self.sample_rate,
            method=self.method,
        )
        f_res = harvester.resonant_frequency(current_gap)
        retune = abs(f_est - f_res) > self.dead_band and f_est > 0.0
        if retune:
            target = harvester.gap_for_frequency(
                harvester.tuning.clamp_frequency(f_est)
            )
            # A commanded move that would not actually change the gap
            # (estimate outside the band, already at the stop) is a
            # no-op; report it as "no retune" so the simulators do not
            # book a zero-length actuation.
            if abs(target - current_gap) < 1.0e-9:
                retune = False
                target = current_gap
        else:
            target = current_gap
        return TuningDecision(
            t=t,
            f_estimate=f_est,
            f_resonance=f_res,
            retune=retune,
            target_gap=target,
            measurement_energy=self.measurement_energy,
        )

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"controller: every {self.check_interval:g} s, dead band "
            f"{self.dead_band:g} Hz, {self.method} over "
            f"{self.capture_time:g} s"
        )
