"""Output regulator with brownout hysteresis.

The sensor node's electronics run from a regulated 3.0 V rail derived
from the supercapacitor bus.  Two behaviours matter to the energy
management study:

* the regulator reflects the load power back onto the bus as a
  *constant-power* draw scaled by its efficiency, plus a quiescent
  current, and
* it disconnects the load below a brownout threshold and only
  reconnects once the bus has recovered past a higher restart
  threshold.  The hysteresis gap is what turns an energy deficit into
  measurable *downtime* rather than rapid oscillation.
"""

from __future__ import annotations

from repro.errors import ModelError


class Regulator:
    """Constant-power regulator model with undervoltage lockout.

    Args:
        v_out: regulated output voltage, volts.
        efficiency: conversion efficiency (0, 1].
        quiescent_current: always-present input current while enabled, A.
        v_brownout: bus voltage below which the output disconnects, V.
        v_restart: bus voltage above which the output reconnects, V
            (must exceed ``v_brownout``).
    """

    def __init__(
        self,
        v_out: float = 3.0,
        efficiency: float = 0.85,
        quiescent_current: float = 2.0e-6,
        v_brownout: float = 2.2,
        v_restart: float = 2.5,
    ):
        if v_out <= 0.0:
            raise ModelError(f"v_out must be > 0, got {v_out}")
        if not (0.0 < efficiency <= 1.0):
            raise ModelError(f"efficiency must be in (0, 1], got {efficiency}")
        if quiescent_current < 0.0:
            raise ModelError(
                f"quiescent_current must be >= 0, got {quiescent_current}"
            )
        if v_brownout <= 0.0:
            raise ModelError(f"v_brownout must be > 0, got {v_brownout}")
        if v_restart <= v_brownout:
            raise ModelError(
                f"v_restart ({v_restart}) must exceed v_brownout ({v_brownout})"
            )
        self.v_out = float(v_out)
        self.efficiency = float(efficiency)
        self.quiescent_current = float(quiescent_current)
        self.v_brownout = float(v_brownout)
        self.v_restart = float(v_restart)

    def input_current(self, load_power: float, v_bus: float) -> float:
        """Bus current drawn for a given output load power, amperes.

        Constant-power behaviour: ``i = P / (eta * v_bus) + i_q``.  The
        bus voltage is floored at the brownout threshold purely for
        numerical safety — callers are expected to gate the load with
        :meth:`next_enabled` before asking for current.
        """
        if load_power < 0.0:
            raise ModelError(f"load_power must be >= 0, got {load_power}")
        v = max(v_bus, self.v_brownout)
        return load_power / (self.efficiency * v) + self.quiescent_current

    def next_enabled(self, enabled: bool, v_bus: float) -> bool:
        """Advance the undervoltage-lockout state machine.

        While enabled, the output stays on until the bus falls below
        ``v_brownout``; while disabled, it stays off until the bus rises
        above ``v_restart``.
        """
        if enabled:
            return v_bus >= self.v_brownout
        return v_bus >= self.v_restart

    def headroom(self, v_bus: float) -> float:
        """Margin above the brownout threshold, volts (may be negative)."""
        return v_bus - self.v_brownout

    def __repr__(self) -> str:
        return (
            f"Regulator(v_out={self.v_out} V, eta={self.efficiency}, "
            f"UVLO {self.v_brownout}/{self.v_restart} V)"
        )
