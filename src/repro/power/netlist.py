"""Node-based circuit builder with MNA-style stamping.

The power-processing circuits (bridge, doubler, multiplier ladder) are
described as netlists of resistors, capacitors, diodes and named
external current injections.  :meth:`Circuit.assemble` reduces the
netlist to the matrices both simulation engines integrate:

.. math::

    C \\dot v = -G(m) v + s(m) + \\textstyle\\sum_k e_k u_k(t)

where ``v`` are the non-ground node voltages, ``m`` is the diode
conduction mode (a tuple of booleans), ``G(m)`` the conductance matrix
with the PWL diode stamps for that mode, ``s(m)`` the Norton offset
currents of the conducting diodes, and ``e_k`` incidence vectors of the
named current inputs (the harvester coil and the load regulator).

Design rule enforced at assembly: **every non-ground node must have
capacitance to ground through the capacitor network** (the matrix ``C``
must be positive definite), so the system is a well-posed ODE rather
than a DAE.  Physical circuits satisfy this naturally (wiring and
device capacitances); the builders add the small parasitics explicitly.

For the Newton-Raphson engine the same object evaluates the smooth
Shockley currents and their Jacobian stamps
(:meth:`CircuitMatrices.shockley_injection`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.power.diode import Diode


@dataclass(frozen=True)
class _Resistor:
    name: str
    n1: int
    n2: int
    resistance: float


@dataclass(frozen=True)
class _Capacitor:
    name: str
    n1: int
    n2: int
    capacitance: float


@dataclass(frozen=True)
class _DiodeElement:
    name: str
    anode: int
    cathode: int
    model: Diode


@dataclass(frozen=True)
class _CurrentInput:
    name: str
    n_from: int
    n_to: int


class Circuit:
    """A small netlist: nodes plus R / C / diode / current-input elements.

    Node 0 is ground.  All other nodes are created by :meth:`add_node`
    and referred to by the returned integer index (or looked up by name
    via :meth:`node_index`).
    """

    GROUND = 0

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._node_names: dict[str, int] = {"gnd": 0}
        self._resistors: list[_Resistor] = []
        self._capacitors: list[_Capacitor] = []
        self._diodes: list[_DiodeElement] = []
        self._inputs: list[_CurrentInput] = []
        self._element_names: set[str] = set()

    # -- construction ---------------------------------------------------------

    def add_node(self, name: str) -> int:
        """Create a named node and return its index."""
        if name in self._node_names:
            raise ModelError(f"node {name!r} already exists")
        index = len(self._node_names)
        self._node_names[name] = index
        return index

    def node_index(self, name: str) -> int:
        """Index of a named node (ground is ``'gnd'``)."""
        try:
            return self._node_names[name]
        except KeyError:
            raise ModelError(f"unknown node {name!r}") from None

    @property
    def node_names(self) -> dict[str, int]:
        """Mapping of node name -> index (includes ground)."""
        return dict(self._node_names)

    def _check_nodes(self, name: str, *nodes: int) -> None:
        if name in self._element_names:
            raise ModelError(f"element name {name!r} already used")
        n_total = len(self._node_names)
        for node in nodes:
            if not (0 <= node < n_total):
                raise ModelError(f"element {name!r}: node {node} does not exist")
        if len(nodes) == 2 and nodes[0] == nodes[1]:
            raise ModelError(f"element {name!r}: both terminals on node {nodes[0]}")
        self._element_names.add(name)

    def add_resistor(self, name: str, n1: int, n2: int, resistance: float) -> None:
        """Two-terminal resistor between nodes ``n1`` and ``n2``."""
        if resistance <= 0.0:
            raise ModelError(f"resistor {name!r}: resistance must be > 0")
        self._check_nodes(name, n1, n2)
        self._resistors.append(_Resistor(name, n1, n2, float(resistance)))

    def add_capacitor(self, name: str, n1: int, n2: int, capacitance: float) -> None:
        """Two-terminal capacitor between nodes ``n1`` and ``n2``."""
        if capacitance <= 0.0:
            raise ModelError(f"capacitor {name!r}: capacitance must be > 0")
        self._check_nodes(name, n1, n2)
        self._capacitors.append(_Capacitor(name, n1, n2, float(capacitance)))

    def add_diode(self, name: str, anode: int, cathode: int, model: Diode) -> int:
        """Diode from ``anode`` to ``cathode``; returns its mode-slot index."""
        self._check_nodes(name, anode, cathode)
        self._diodes.append(_DiodeElement(name, anode, cathode, model))
        return len(self._diodes) - 1

    def add_current_input(self, name: str, n_from: int, n_to: int) -> None:
        """Named external current injection.

        A positive input value drives current *from* ``n_from`` *to*
        ``n_to`` through the external element (i.e. it is withdrawn
        from ``n_from`` and injected into ``n_to``).
        """
        self._check_nodes(name, n_from, n_to)
        self._inputs.append(_CurrentInput(name, n_from, n_to))

    # -- assembly --------------------------------------------------------------

    def assemble(self) -> "CircuitMatrices":
        """Reduce the netlist to engine-ready matrices.

        Raises:
            ModelError: if the capacitance matrix is singular (some node
                has no capacitive path to ground), because the network
                would then be a DAE the explicit engines cannot step.
        """
        n = len(self._node_names) - 1  # non-ground nodes
        if n == 0:
            raise ModelError("circuit has no nodes besides ground")
        cap = np.zeros((n, n))
        for c in self._capacitors:
            _stamp_conductance_like(cap, c.n1, c.n2, c.capacitance)
        try:
            np.linalg.cholesky(cap)
        except np.linalg.LinAlgError:
            floating = [
                name
                for name, idx in self._node_names.items()
                if idx > 0 and cap[idx - 1, idx - 1] == 0.0
            ]
            hint = (
                f"nodes without any capacitance: {floating}"
                if floating
                else "the capacitor network has a floating subcircuit"
            )
            raise ModelError(
                f"singular capacitance matrix in {self.title!r}: {hint}; "
                "add parasitic capacitance to ground"
            ) from None
        g_static = np.zeros((n, n))
        for r in self._resistors:
            _stamp_conductance_like(g_static, r.n1, r.n2, 1.0 / r.resistance)
        input_vectors: dict[str, np.ndarray] = {}
        for src in self._inputs:
            e = np.zeros(n)
            if src.n_to > 0:
                e[src.n_to - 1] += 1.0
            if src.n_from > 0:
                e[src.n_from - 1] -= 1.0
            input_vectors[src.name] = e
        return CircuitMatrices(
            title=self.title,
            node_names=self.node_names,
            cap_matrix=cap,
            g_static=g_static,
            diodes=tuple(self._diodes),
            input_vectors=input_vectors,
            capacitors=tuple(self._capacitors),
        )


def _stamp_conductance_like(matrix: np.ndarray, n1: int, n2: int, value: float) -> None:
    """Standard two-terminal nodal stamp (ground rows/cols dropped)."""
    i = n1 - 1
    j = n2 - 1
    if i >= 0:
        matrix[i, i] += value
    if j >= 0:
        matrix[j, j] += value
    if i >= 0 and j >= 0:
        matrix[i, j] -= value
        matrix[j, i] -= value


class CircuitMatrices:
    """Assembled matrices and per-mode stamping for one circuit.

    Produced by :meth:`Circuit.assemble`; immutable from the caller's
    point of view (all accessors return copies or read-only data).
    """

    def __init__(
        self,
        title: str,
        node_names: dict[str, int],
        cap_matrix: np.ndarray,
        g_static: np.ndarray,
        diodes: tuple[_DiodeElement, ...],
        input_vectors: dict[str, np.ndarray],
        capacitors: tuple[_Capacitor, ...],
    ):
        self.title = title
        self.node_names = node_names
        self._cap = cap_matrix
        self._cap_inv = np.linalg.inv(cap_matrix)
        self._g_static = g_static
        self._diodes = diodes
        self._inputs = input_vectors
        self._capacitors = capacitors
        # Per-diode incidence vector: current leaves the anode.
        n = cap_matrix.shape[0]
        self._diode_inc = np.zeros((len(diodes), n))
        for k, d in enumerate(diodes):
            if d.anode > 0:
                self._diode_inc[k, d.anode - 1] = 1.0
            if d.cathode > 0:
                self._diode_inc[k, d.cathode - 1] = -1.0
        # Vectorized Shockley parameters (hot path of the NR engine).
        self._d_is = np.array([d.model.saturation_current for d in diodes])
        self._d_nvt = np.array([d.model.n_vt for d in diodes])
        self._d_goff = np.array([d.model.g_off for d in diodes])

    # -- shapes and metadata ---------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes (state dimension)."""
        return self._cap.shape[0]

    @property
    def n_diodes(self) -> int:
        return len(self._diodes)

    @property
    def diode_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self._diodes)

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(self._inputs.keys())

    @property
    def cap_matrix(self) -> np.ndarray:
        return self._cap.copy()

    @property
    def cap_inverse(self) -> np.ndarray:
        return self._cap_inv.copy()

    def input_vector(self, name: str) -> np.ndarray:
        """Incidence vector of a named current input."""
        try:
            return self._inputs[name].copy()
        except KeyError:
            raise ModelError(f"unknown current input {name!r}") from None

    def node_voltage(self, v: np.ndarray, name: str) -> float:
        """Voltage of a named node given the state vector ``v``."""
        idx = self.node_names.get(name)
        if idx is None:
            raise ModelError(f"unknown node {name!r}")
        return 0.0 if idx == 0 else float(v[idx - 1])

    # -- PWL view ----------------------------------------------------------------

    def diode_voltages(self, v: np.ndarray) -> np.ndarray:
        """Junction voltages v_anode - v_cathode for every diode."""
        return self._diode_inc @ v

    def mode_from_voltages(self, v: np.ndarray) -> tuple[int, ...]:
        """Per-diode PWL segment indices implied by the node voltages."""
        vd = self.diode_voltages(v)
        return tuple(
            d.model.pwl_state(float(vd_k)) for d, vd_k in zip(self._diodes, vd)
        )

    def resistor_conductance_matrix(self) -> np.ndarray:
        """Pure-resistor conductance matrix, with *no* diode stamps.

        The smooth (Shockley) view adds the diode currents — including
        their reverse leakage ``g_off`` — through
        :meth:`shockley_injection`, so the Newton-Raphson engine must
        combine its diode model with this matrix rather than with
        :meth:`conductance_matrix` to avoid double-counting the leak.
        """
        return self._g_static.copy()

    def conductance_matrix(self, mode: tuple[int, ...]) -> np.ndarray:
        """G(m): static resistor stamps plus PWL diode-segment stamps."""
        self._check_mode(mode)
        g = self._g_static.copy()
        for d, state in zip(self._diodes, mode):
            g_seg, _ = d.model.pwl_coefficients(state)
            _stamp_conductance_like(g, d.anode, d.cathode, g_seg)
        return g

    def norton_vector(self, mode: tuple[int, ...]) -> np.ndarray:
        """s(m): Norton offset currents of the active diode segments.

        A segment ``i = g v_d + c`` drives the constant ``c`` out of the
        anode and into the cathode, contributing ``-c`` / ``+c`` to the
        respective rows of ``C v' = -G v + s``.
        """
        self._check_mode(mode)
        s = np.zeros(self.n_nodes)
        for d, inc, state in zip(self._diodes, self._diode_inc, mode):
            _, c = d.model.pwl_coefficients(state)
            if c != 0.0:
                s -= inc * c
        return s

    def boundary_values(self, v: np.ndarray) -> np.ndarray:
        """Signed segment-boundary distances, two per diode.

        Layout: ``[d1_low, d1_high, d2_low, d2_high, ...]`` where
        ``low``/``high`` are the off->knee and knee->on breakpoints.
        """
        vd = self.diode_voltages(v)
        out = np.empty(2 * len(self._diodes))
        for k, (d, x) in enumerate(zip(self._diodes, vd)):
            low, high = d.model.boundaries(float(x))
            out[2 * k] = low
            out[2 * k + 1] = high
        return out

    @staticmethod
    def segments_from_boundaries(b: np.ndarray) -> tuple[int, ...]:
        """Per-diode segment indices from a boundary-value vector."""
        states = []
        for k in range(0, len(b), 2):
            if b[k + 1] >= 0.0:
                states.append(2)
            elif b[k] >= 0.0:
                states.append(1)
            else:
                states.append(0)
        return tuple(states)

    def _check_mode(self, mode: tuple[int, ...]) -> None:
        if len(mode) != len(self._diodes):
            raise ModelError(
                f"mode has {len(mode)} entries for {len(self._diodes)} diodes"
            )
        for state in mode:
            if state not in (0, 1, 2):
                raise ModelError(f"invalid PWL segment {state} in mode {mode}")

    # -- Shockley view -------------------------------------------------------------

    def shockley_injection(
        self, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Smooth diode currents and their Jacobian stamps.

        Returns:
            (injection, jacobian): ``injection`` is the nodal current
            vector contributed by the diodes (to be *added* to
            ``C v' = -G_static v + ...``, i.e. already carries the minus
            sign of current leaving the anode); ``jacobian`` is
            d(injection)/dv.
        """
        if not self._diodes:
            n = self.n_nodes
            return np.zeros(n), np.zeros((n, n))
        vd = self._diode_inc @ v
        x = vd / self._d_nvt
        clamped = np.minimum(x, 60.0)
        exp_part = np.exp(clamped)
        # Beyond the exponent clamp the curve continues with its
        # tangent (matches Diode.current / Diode.conductance).
        value = np.where(
            x > 60.0, exp_part * (1.0 + (x - 60.0)) - 1.0, exp_part - 1.0
        )
        currents = self._d_is * value + self._d_goff * vd
        slopes = self._d_is * exp_part / self._d_nvt + self._d_goff
        inj = -(self._diode_inc.T @ currents)
        jac = -(self._diode_inc.T * slopes) @ self._diode_inc
        return inj, jac

    def shockley_diode_currents(self, v: np.ndarray) -> np.ndarray:
        """Per-diode Shockley currents (anode -> cathode), amperes."""
        vd = self._diode_inc @ v
        return np.array(
            [d.model.current(float(x)) for d, x in zip(self._diodes, vd)]
        )

    def pwl_diode_currents(
        self, v: np.ndarray, mode: tuple[int, ...]
    ) -> np.ndarray:
        """Per-diode PWL currents in the given mode, amperes."""
        self._check_mode(mode)
        vd = self._diode_inc @ v
        return np.array(
            [
                d.model.pwl_current(float(x), state)
                for d, x, state in zip(self._diodes, vd, mode)
            ]
        )

    # -- bookkeeping ------------------------------------------------------------------

    def capacitor_energy(self, v: np.ndarray) -> float:
        """Total energy stored in the capacitor network, joules."""
        full = np.concatenate(([0.0], np.asarray(v, dtype=float)))
        total = 0.0
        for c in self._capacitors:
            dv = full[c.n1] - full[c.n2]
            total += 0.5 * c.capacitance * dv**2
        return total

    def resistive_power(self, v: np.ndarray) -> float:
        """Instantaneous dissipation in the static resistors, watts."""
        vv = np.asarray(v, dtype=float)
        return float(vv @ self._g_static @ vv)
