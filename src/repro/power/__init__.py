"""Power-processing substrate.

The chain between the harvester coil and the sensor node: rectification
/ voltage multiplication (nonlinear, diode-based), supercapacitor
energy storage, and output regulation.

* :mod:`repro.power.diode` — Shockley and piecewise-linear diode models
  (the same physical diode exposes both views; the NR engine uses the
  smooth model, the linearized state-space engine the PWL one).
* :mod:`repro.power.netlist` — a small node-based circuit builder with
  MNA-style stamping that produces the capacitance/conductance matrices
  the engines integrate.
* :mod:`repro.power.rectifier` — circuit builders: full bridge,
  Greinacher voltage doubler, N-stage Cockcroft-Walton/Dickson ladder.
* :mod:`repro.power.supercap` — supercapacitor store (ESR + leakage).
* :mod:`repro.power.regulator` — node-side regulator with brownout
  hysteresis.
* :mod:`repro.power.behavioral` — a fast behavioural (efficiency-map)
  power path used for ablation studies.
"""

from repro.power.diode import Diode
from repro.power.supercap import Supercapacitor
from repro.power.regulator import Regulator
from repro.power.netlist import Circuit, CircuitMatrices
from repro.power.rectifier import (
    PowerCircuit,
    build_bridge_circuit,
    build_doubler_circuit,
    build_multiplier_circuit,
    build_resistive_load_circuit,
)
from repro.power.behavioral import BehavioralPowerPath

__all__ = [
    "Diode",
    "Supercapacitor",
    "Regulator",
    "Circuit",
    "CircuitMatrices",
    "PowerCircuit",
    "build_bridge_circuit",
    "build_doubler_circuit",
    "build_multiplier_circuit",
    "build_resistive_load_circuit",
    "BehavioralPowerPath",
]
