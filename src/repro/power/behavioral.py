"""Behavioural (efficiency-map) power path.

A deliberately coarse alternative to the circuit-level rectifier: the
harvester's steady-state AC power at the present operating point is
converted to store-charging power through a fixed conversion
efficiency and an emulated input resistance.  It exists for the
model-fidelity ablation (R-A3 asks what the DoE conclusions lose when
the power path is simplified this far) and as a fast fallback for
sketching studies.

The emulated-load abstraction: a rectifier charging a capacitor loads
the coil *roughly* like a resistor whose value sets the electrical
damping; the builder exposes that resistance as a parameter instead of
pretending to know it from first principles.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.harvester import analytic
from repro.harvester.parameters import MicrogeneratorParameters


class BehavioralPowerPath:
    """Efficiency-map power path: coil AC power -> store charging power.

    Args:
        emulated_load: resistance the converter presents to the coil,
            ohms (sets the electrical damping / power split).
        efficiency: AC-to-store conversion efficiency (0, 1].
        v_min_charge: store voltage below which charging is ineffective
            (models the multiplier needing forward-bias headroom), V.
        v_max: store voltage at which charging tapers to zero (the
            ladder cannot push above its no-load output), V.
    """

    def __init__(
        self,
        emulated_load: float = 4.0e3,
        efficiency: float = 0.65,
        v_min_charge: float = 0.0,
        v_max: float = 5.0,
    ):
        if emulated_load <= 0.0:
            raise ModelError(f"emulated_load must be > 0, got {emulated_load}")
        if not (0.0 < efficiency <= 1.0):
            raise ModelError(f"efficiency must be in (0, 1], got {efficiency}")
        if v_min_charge < 0.0:
            raise ModelError(f"v_min_charge must be >= 0, got {v_min_charge}")
        if v_max <= v_min_charge:
            raise ModelError(
                f"v_max ({v_max}) must exceed v_min_charge ({v_min_charge})"
            )
        self.emulated_load = float(emulated_load)
        self.efficiency = float(efficiency)
        self.v_min_charge = float(v_min_charge)
        self.v_max = float(v_max)

    def charging_power(
        self,
        params: MicrogeneratorParameters,
        amplitude: float,
        frequency: float,
        resonance: float,
        v_store: float,
    ) -> float:
        """Average power delivered into the store, watts.

        The coil-side AC power comes from the closed-form steady state
        at the emulated load; a linear taper between ``v_min_charge``
        and ``v_max`` models the converter's voltage-dependent
        effectiveness.
        """
        if v_store < 0.0:
            raise ModelError(f"v_store must be >= 0, got {v_store}")
        ac_power = analytic.load_power(
            params, amplitude, frequency, self.emulated_load, resonance
        )
        if v_store <= self.v_min_charge:
            taper = 1.0
        elif v_store >= self.v_max:
            taper = 0.0
        else:
            taper = (self.v_max - v_store) / (self.v_max - self.v_min_charge)
        return self.efficiency * ac_power * taper
