"""Supercapacitor energy store.

The node's energy buffer: a supercapacitor with equivalent series
resistance (ESR) and a parallel leakage path.  The circuit builders in
:mod:`repro.power.rectifier` stamp it into the netlist as

.. code-block:: text

    bus ──[ESR]── cap ──┐          bus: external terminal (rectifier
                 C_store│ R_leak        output and load connection)
                        │          cap: internal ideal-capacitor node
    gnd ────────────────┴──

so the *terminal* voltage sags under load current while the *internal*
voltage integrates charge, as a real device does.
"""

from __future__ import annotations

from repro.errors import ModelError


class Supercapacitor:
    """Supercapacitor parameters and energy bookkeeping.

    Args:
        capacitance: nominal capacitance, farads.
        esr: equivalent series resistance, ohms.
        leakage_resistance: parallel self-discharge resistance, ohms.
        v_rated: rated (maximum) voltage, volts.
        v_initial: voltage at simulation start, volts.
    """

    def __init__(
        self,
        capacitance: float = 0.40,
        esr: float = 25.0,
        leakage_resistance: float = 500.0e3,
        v_rated: float = 5.0,
        v_initial: float = 2.6,
    ):
        if capacitance <= 0.0:
            raise ModelError(f"capacitance must be > 0, got {capacitance}")
        if esr < 0.0:
            raise ModelError(f"esr must be >= 0, got {esr}")
        if leakage_resistance <= 0.0:
            raise ModelError(
                f"leakage_resistance must be > 0, got {leakage_resistance}"
            )
        if v_rated <= 0.0:
            raise ModelError(f"v_rated must be > 0, got {v_rated}")
        if not (0.0 <= v_initial <= v_rated):
            raise ModelError(
                f"v_initial must lie in [0, v_rated], got {v_initial}"
            )
        self.capacitance = float(capacitance)
        self.esr = float(esr)
        self.leakage_resistance = float(leakage_resistance)
        self.v_rated = float(v_rated)
        self.v_initial = float(v_initial)

    def energy(self, voltage: float) -> float:
        """Stored energy 0.5*C*v^2 at the internal voltage, joules."""
        return 0.5 * self.capacitance * voltage**2

    def usable_energy(self, voltage: float, v_cutoff: float) -> float:
        """Energy extractable before the voltage falls to ``v_cutoff``, J.

        Negative inputs are a caller error; a voltage already below the
        cutoff yields 0 (nothing usable), not a negative energy.
        """
        if v_cutoff < 0.0:
            raise ModelError(f"v_cutoff must be >= 0, got {v_cutoff}")
        if voltage <= v_cutoff:
            return 0.0
        return self.energy(voltage) - self.energy(v_cutoff)

    def leakage_current(self, voltage: float) -> float:
        """Self-discharge current at the given internal voltage, A."""
        return voltage / self.leakage_resistance

    def voltage_after_idle(self, voltage: float, duration: float) -> float:
        """Internal voltage after self-discharging for ``duration`` s.

        Exact RC decay ``v * exp(-t / (R_leak C))`` — used by the
        envelope engine for long idle stretches and by tests as the
        reference the transient engines must approach.
        """
        if duration < 0.0:
            raise ModelError(f"duration must be >= 0, got {duration}")
        tau = self.leakage_resistance * self.capacitance
        import math

        return voltage * math.exp(-duration / tau)

    def charge_time_constant(self, source_resistance: float) -> float:
        """RC constant for charging through ``source_resistance`` ohms."""
        if source_resistance < 0.0:
            raise ModelError(
                f"source_resistance must be >= 0, got {source_resistance}"
            )
        return (source_resistance + self.esr) * self.capacitance

    def replace(self, **changes: float) -> "Supercapacitor":
        """Copy with fields changed (the DoE layer sweeps capacitance)."""
        fields = {
            "capacitance": self.capacitance,
            "esr": self.esr,
            "leakage_resistance": self.leakage_resistance,
            "v_rated": self.v_rated,
            "v_initial": self.v_initial,
        }
        fields.update(changes)
        return Supercapacitor(**fields)

    def __repr__(self) -> str:
        return (
            f"Supercapacitor(C={self.capacitance} F, ESR={self.esr} ohm, "
            f"R_leak={self.leakage_resistance:.3g} ohm, "
            f"v_rated={self.v_rated} V)"
        )
