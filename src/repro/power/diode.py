"""Diode models: smooth Shockley and piecewise-linear views.

One :class:`Diode` instance describes one physical device and exposes
*two* consistent electrical views:

* the **Shockley** exponential ``i = I_s (exp(v/(n V_T)) - 1) + g_min v``
  used by the Newton-Raphson engine (with the customary exponent clamp
  so the residual stays finite during bad Newton iterates), and
* the **piecewise-linear (PWL)** companion used by the explicit
  linearized state-space engine of ref [4]:

  - *on*  (``v >= v_on``):  ``i = (v - v_on) / r_on``
  - *off* (``v <  v_on``):  ``i = g_off * v``

The PWL parameters default to the tangent of the Shockley curve at a
stated operating current, so the two views agree where the circuit
actually operates; the consistency is property-tested.
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.units import thermal_voltage

#: Clamp on the Shockley exponent argument.  exp(60) ~ 1e26 is already
#: far beyond any physical current; beyond the clamp the curve continues
#: with its tangent so Newton iterates see finite values and slopes.
_EXP_CLAMP = 60.0


class Diode:
    """A diode with consistent Shockley and PWL descriptions.

    Args:
        saturation_current: Shockley I_s, amperes.
        ideality: emission coefficient n.
        v_on: PWL threshold voltage, volts.  If None it is derived as
            the voltage where the Shockley current reaches ``i_knee``.
        r_on: PWL on-slope resistance, ohms.  If None it is derived as
            the inverse Shockley slope at ``i_knee``.
        g_off: PWL off conductance, siemens (small leak keeping system
            matrices well-conditioned; also models reverse leakage).
        i_knee: operating current at which the PWL model is matched to
            the Shockley curve, amperes.
        temperature_c: junction temperature for V_T, Celsius.
    """

    def __init__(
        self,
        saturation_current: float = 1.0e-8,
        ideality: float = 1.05,
        v_on: float | None = None,
        r_on: float | None = None,
        g_off: float = 1.0e-9,
        i_knee: float = 1.0e-4,
        temperature_c: float = 27.0,
    ):
        if saturation_current <= 0.0:
            raise ModelError(
                f"saturation_current must be > 0, got {saturation_current}"
            )
        if ideality <= 0.0:
            raise ModelError(f"ideality must be > 0, got {ideality}")
        if g_off <= 0.0:
            raise ModelError(f"g_off must be > 0, got {g_off}")
        if i_knee <= 0.0:
            raise ModelError(f"i_knee must be > 0, got {i_knee}")
        self.saturation_current = float(saturation_current)
        self.ideality = float(ideality)
        self.g_off = float(g_off)
        self.i_knee = float(i_knee)
        self.n_vt = self.ideality * thermal_voltage(temperature_c)
        knee_v = self.n_vt * math.log(1.0 + self.i_knee / self.saturation_current)
        knee_g = (self.saturation_current / self.n_vt) * math.exp(
            knee_v / self.n_vt
        )
        derived_r_on = 1.0 / knee_g
        # Tangent construction: the PWL on-branch is the tangent at the
        # knee, whose v-axis intercept is the threshold.
        derived_v_on = knee_v - self.i_knee * derived_r_on
        self.v_on = float(v_on) if v_on is not None else derived_v_on
        self.r_on = float(r_on) if r_on is not None else derived_r_on
        if self.v_on <= 0.0:
            raise ModelError(f"v_on must be > 0, got {self.v_on}")
        if self.r_on <= 0.0:
            raise ModelError(f"r_on must be > 0, got {self.r_on}")
        self._build_pwl_segments()

    # -- Shockley view (Newton-Raphson engine) --------------------------------

    def current(self, voltage: float) -> float:
        """Shockley current at junction voltage ``voltage``, amperes.

        Beyond the exponent clamp the curve continues linearly with its
        tangent, keeping Newton residuals finite.
        """
        x = voltage / self.n_vt
        if x > _EXP_CLAMP:
            base = math.exp(_EXP_CLAMP)
            value = base * (1.0 + (x - _EXP_CLAMP)) - 1.0
        else:
            value = math.exp(x) - 1.0
        return self.saturation_current * value + self.g_off * voltage

    def conductance(self, voltage: float) -> float:
        """di/dv of :meth:`current` (always > 0), siemens."""
        x = voltage / self.n_vt
        slope = math.exp(min(x, _EXP_CLAMP)) / self.n_vt
        return self.saturation_current * slope + self.g_off

    def limit_junction_update(self, v_old: float, v_new: float) -> float:
        """Classical SPICE-style junction-voltage damping for Newton.

        Large forward-bias steps are pulled back logarithmically so the
        exponential cannot explode a Newton iterate; reverse steps pass
        through unchanged.
        """
        v_crit = self.n_vt * math.log(self.n_vt / (self.saturation_current * math.sqrt(2.0)))
        if v_new <= v_crit or abs(v_new - v_old) <= 2.0 * self.n_vt:
            return v_new
        if v_old > 0.0:
            arg = 1.0 + (v_new - v_old) / self.n_vt
            if arg > 0.0:
                return v_old + self.n_vt * math.log(arg)
            return v_crit
        return v_crit

    # -- PWL view (linearized state-space engine) -----------------------------
    #
    # Three segments approximate the exponential:
    #
    #   0 "off"  (v <  v_knee_low):   i = g_off * v
    #   1 "knee" (v_knee_low <= v < v_knee_high):  chord through the
    #             curvature region — this segment is what lets the PWL
    #             model *rectify* at small signal amplitudes.  A naive
    #             two-segment (off/on) companion famously locks into a
    #             non-pumping state when the swing rides the threshold,
    #             because a single linear branch cannot rectify.
    #   2 "on"   (v >= v_knee_high):  tangent at the knee current,
    #             i = (v - v_on) / r_on.
    #
    # Each segment is i = g*v + c with the pieces continuous at the
    # breakpoints (the knee chord is anchored on the off branch at the
    # lower breakpoint and on the tangent at the upper one).

    #: Number of PWL segments per diode.
    N_SEGMENTS = 3

    def _build_pwl_segments(self) -> None:
        """Compute segment breakpoints and (g, c) coefficients."""
        i_low = self.i_knee / 100.0
        v_low = self.n_vt * math.log(1.0 + i_low / self.saturation_current)
        v_high = self.n_vt * math.log(
            1.0 + self.i_knee / self.saturation_current
        )
        # Anchor the chord on the off branch at v_low and reach the
        # Shockley current at v_high.
        i_at_low = self.g_off * v_low
        i_at_high = self.i_knee
        g_knee = (i_at_high - i_at_low) / (v_high - v_low)
        c_knee = i_at_low - g_knee * v_low
        # The on tangent continues from (v_high, i_at_high) with the
        # configured slope; recompute its offset for continuity.
        g_on = 1.0 / self.r_on
        c_on = i_at_high - g_on * v_high
        self.v_knee_low = v_low
        self.v_knee_high = v_high
        self._pwl = (
            (self.g_off, 0.0),
            (g_knee, c_knee),
            (g_on, c_on),
        )

    def pwl_state(self, voltage: float) -> int:
        """PWL segment index (0 off, 1 knee, 2 on) at this voltage."""
        if voltage >= self.v_knee_high:
            return 2
        if voltage >= self.v_knee_low:
            return 1
        return 0

    def pwl_coefficients(self, state: int) -> tuple[float, float]:
        """(conductance g, offset current c) of a segment: i = g v + c."""
        try:
            return self._pwl[state]
        except IndexError:
            raise ModelError(f"invalid PWL state {state}") from None

    def pwl_current(self, voltage: float, state: int | None = None) -> float:
        """PWL current at ``voltage`` (segment inferred unless given)."""
        s = self.pwl_state(voltage) if state is None else state
        g, c = self.pwl_coefficients(s)
        return g * voltage + c

    def boundaries(self, voltage: float) -> tuple[float, float]:
        """Signed distances to the two segment boundaries.

        ``(v - v_knee_low, v - v_knee_high)`` — the linearized engine
        watches their sign changes to detect segment transitions.
        """
        return (voltage - self.v_knee_low, voltage - self.v_knee_high)

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def schottky(cls) -> "Diode":
        """Low-threshold Schottky (BAT54-class), the harvester's choice."""
        return cls(saturation_current=2.0e-7, ideality=1.1, i_knee=2.0e-4)

    @classmethod
    def silicon(cls) -> "Diode":
        """Ordinary small-signal silicon diode (1N4148-class)."""
        return cls(saturation_current=2.5e-9, ideality=1.8, i_knee=1.0e-3)

    def __repr__(self) -> str:
        return (
            f"Diode(Is={self.saturation_current:.2e}, n={self.ideality}, "
            f"v_on={self.v_on:.3f} V, r_on={self.r_on:.1f} ohm)"
        )
