"""Power-circuit builders: bridge, doubler, Cockcroft-Walton ladder.

Each builder returns a :class:`PowerCircuit`: the assembled
:class:`~repro.power.netlist.CircuitMatrices` plus the node-name map the
system model needs (coil terminals, bus, store).  All circuits share the
same conventions:

* ``coil`` current input — positive harvester coil current enters the
  ``in_p`` terminal and returns via ``in_n`` (ground for the
  single-ended topologies).
* ``load`` current input — the regulator draws its input current from
  the ``bus`` node.
* the supercapacitor is stamped as ``bus --ESR-- store`` with the bulk
  capacitance and leakage at ``store`` (see
  :mod:`repro.power.supercap`).
* every internal node carries a small parasitic capacitance to ground
  so the capacitance matrix is positive definite (a netlist assembly
  requirement — see :mod:`repro.power.netlist`).

The voltage-multiplier ladder follows the classical Greinacher /
Cockcroft-Walton arrangement: ``n_stages`` stages use ``2 n`` diodes and
``2 n`` pump/smoothing capacitors and ideally produce ``2 n`` times the
peak input voltage at no load.  ``n_stages = 1`` is the voltage doubler.
The companion HDL paper drives its node from exactly such a multiplier,
because the microgenerator's open-circuit EMF (hundreds of mV) is below
practical regulator input ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.power.diode import Diode
from repro.power.netlist import Circuit, CircuitMatrices
from repro.power.supercap import Supercapacitor

#: Parasitic node capacitance to ground, farads.  Represents wiring and
#: device capacitance; its only job is to keep the ODE well posed, and
#: it is small enough (10 nF) not to influence 60-80 Hz behaviour.
PARASITIC_CAPACITANCE = 10.0e-9

#: Decoupling capacitance at the bus terminal, farads (ceramic across
#: the supercap terminals on the real board).
BUS_CAPACITANCE = 1.0e-6


@dataclass
class PowerCircuit:
    """An assembled power-processing circuit plus its terminal map.

    Attributes:
        matrices: engine-ready matrices from :meth:`Circuit.assemble`.
        topology: human-readable name ("bridge", "doubler",
            "multiplier-3", "resistive").
        supercap: the storage element, or None for the resistive-load
            validation circuit.
        input_plus / input_minus: coil terminal node names.
        bus_node: rectifier output / load terminal node name.
        store_node: internal supercapacitor node name (None when there
            is no store).
        n_stages: multiplier stage count (0 = bridge, 1 = doubler...).
    """

    matrices: CircuitMatrices
    topology: str
    supercap: Supercapacitor | None
    input_plus: str = "in_p"
    input_minus: str = "gnd"
    bus_node: str = "bus"
    store_node: str | None = "store"
    n_stages: int = 0
    extra: dict = field(default_factory=dict)

    # -- state helpers ---------------------------------------------------------

    def initial_voltages(self) -> np.ndarray:
        """Initial node-voltage vector.

        The store and bus start at the supercapacitor's initial voltage
        (they are connected through the ESR and carry no current at
        t=0); every other node starts discharged.
        """
        v = np.zeros(self.matrices.n_nodes)
        if self.supercap is not None and self.store_node is not None:
            v0 = self.supercap.v_initial
            v[self.matrices.node_names[self.store_node] - 1] = v0
            v[self.matrices.node_names[self.bus_node] - 1] = v0
        return v

    def store_voltage(self, v: np.ndarray) -> float:
        """Internal supercap voltage from a node-voltage vector."""
        if self.store_node is None:
            raise ModelError(f"{self.topology!r} circuit has no store node")
        return self.matrices.node_voltage(v, self.store_node)

    def bus_voltage(self, v: np.ndarray) -> float:
        """Bus (load terminal) voltage from a node-voltage vector."""
        return self.matrices.node_voltage(v, self.bus_node)

    def coil_terminal_voltage(self, v: np.ndarray) -> float:
        """Voltage the circuit presents at the coil, v(in_p) - v(in_n)."""
        vp = self.matrices.node_voltage(v, self.input_plus)
        vn = (
            0.0
            if self.input_minus == "gnd"
            else self.matrices.node_voltage(v, self.input_minus)
        )
        return vp - vn


def _attach_store(circuit: Circuit, bus: int, supercap: Supercapacitor) -> None:
    """Stamp bus --ESR-- store, C_store and leakage at store."""
    store = circuit.add_node("store")
    esr = max(supercap.esr, 1.0e-3)  # an exactly-zero ESR would short nodes
    circuit.add_resistor("esr", bus, store, esr)
    circuit.add_capacitor("c_store", store, Circuit.GROUND, supercap.capacitance)
    circuit.add_resistor(
        "r_leak", store, Circuit.GROUND, supercap.leakage_resistance
    )


def build_bridge_circuit(
    supercap: Supercapacitor,
    diode: Diode | None = None,
) -> PowerCircuit:
    """Full-wave diode bridge charging the supercapacitor.

    The coil floats between ``in_p`` and ``in_n``; the four bridge
    diodes steer both half-cycles into the bus.
    """
    d = diode if diode is not None else Diode.schottky()
    circuit = Circuit("bridge")
    in_p = circuit.add_node("in_p")
    in_n = circuit.add_node("in_n")
    bus = circuit.add_node("bus")
    circuit.add_capacitor("c_par_p", in_p, Circuit.GROUND, PARASITIC_CAPACITANCE)
    circuit.add_capacitor("c_par_n", in_n, Circuit.GROUND, PARASITIC_CAPACITANCE)
    circuit.add_capacitor("c_bus", bus, Circuit.GROUND, BUS_CAPACITANCE)
    circuit.add_diode("d_p_bus", in_p, bus, d)
    circuit.add_diode("d_n_bus", in_n, bus, d)
    circuit.add_diode("d_gnd_p", Circuit.GROUND, in_p, d)
    circuit.add_diode("d_gnd_n", Circuit.GROUND, in_n, d)
    _attach_store(circuit, bus, supercap)
    circuit.add_current_input("coil", in_n, in_p)
    circuit.add_current_input("load", bus, Circuit.GROUND)
    return PowerCircuit(
        matrices=circuit.assemble(),
        topology="bridge",
        supercap=supercap,
        input_plus="in_p",
        input_minus="in_n",
        n_stages=0,
    )


def build_multiplier_circuit(
    supercap: Supercapacitor,
    n_stages: int,
    diode: Diode | None = None,
    stage_capacitance: float = 4.7e-6,
) -> PowerCircuit:
    """N-stage Greinacher / Cockcroft-Walton voltage multiplier.

    Stage ``k`` adds a pump capacitor on the odd (push) column and a
    smoothing capacitor on the even column; the ladder's top even node
    is the bus.  At no load the ladder settles near ``2 n`` times the
    peak coil voltage, which is what lets a sub-volt microgenerator
    charge a multi-volt store.

    Args:
        supercap: storage element.
        n_stages: number of doubling stages (>= 1; 1 = doubler).
        diode: diode model (defaults to the Schottky).
        stage_capacitance: pump/smoothing capacitor value, farads.
    """
    if n_stages < 1:
        raise ModelError(f"n_stages must be >= 1, got {n_stages}")
    if stage_capacitance <= 0.0:
        raise ModelError(
            f"stage_capacitance must be > 0, got {stage_capacitance}"
        )
    d = diode if diode is not None else Diode.schottky()
    name = "doubler" if n_stages == 1 else f"multiplier-{n_stages}"
    circuit = Circuit(name)
    in_p = circuit.add_node("in_p")
    circuit.add_capacitor("c_par_in", in_p, Circuit.GROUND, PARASITIC_CAPACITANCE)
    # Ladder nodes x1..x_{2n}; the top even node is the bus.
    nodes: list[int] = []
    for k in range(1, 2 * n_stages + 1):
        node_name = "bus" if k == 2 * n_stages else f"x{k}"
        nodes.append(circuit.add_node(node_name))
    # Push column capacitors: in_p -> x1 -> x3 -> ...
    prev = in_p
    for k in range(0, 2 * n_stages, 2):
        circuit.add_capacitor(f"c_push_{k + 1}", prev, nodes[k], stage_capacitance)
        prev = nodes[k]
    # Smoothing column capacitors: gnd -> x2 -> x4 -> ...
    prev = Circuit.GROUND
    for k in range(1, 2 * n_stages, 2):
        circuit.add_capacitor(
            f"c_smooth_{k + 1}", prev, nodes[k], stage_capacitance
        )
        prev = nodes[k]
    # Diode string gnd -> x1 -> x2 -> ... -> x_{2n}.
    prev = Circuit.GROUND
    for k, node in enumerate(nodes, start=1):
        circuit.add_diode(f"d{k}", prev, node, d)
        prev = node
    # Parasitics keep every ladder node capacitively tied to ground.
    for k, node in enumerate(nodes[:-1], start=1):
        circuit.add_capacitor(
            f"c_par_x{k}", node, Circuit.GROUND, PARASITIC_CAPACITANCE
        )
    bus = nodes[-1]
    circuit.add_capacitor("c_bus", bus, Circuit.GROUND, BUS_CAPACITANCE)
    _attach_store(circuit, bus, supercap)
    circuit.add_current_input("coil", Circuit.GROUND, in_p)
    circuit.add_current_input("load", bus, Circuit.GROUND)
    return PowerCircuit(
        matrices=circuit.assemble(),
        topology=name,
        supercap=supercap,
        input_plus="in_p",
        input_minus="gnd",
        n_stages=n_stages,
        extra={"stage_capacitance": stage_capacitance},
    )


def build_doubler_circuit(
    supercap: Supercapacitor,
    diode: Diode | None = None,
    stage_capacitance: float = 4.7e-6,
) -> PowerCircuit:
    """Greinacher voltage doubler (one multiplier stage)."""
    pc = build_multiplier_circuit(
        supercap, n_stages=1, diode=diode, stage_capacitance=stage_capacitance
    )
    return pc


def build_resistive_load_circuit(load_resistance: float) -> PowerCircuit:
    """Plain resistive load across the coil — engine-validation circuit.

    No diodes, no store: the transient engines must reproduce the
    closed-form steady state of :mod:`repro.harvester.analytic` on this
    circuit, which pins down the electromechanical coupling before any
    rectifier nonlinearity enters the picture.
    """
    if load_resistance <= 0.0:
        raise ModelError(
            f"load_resistance must be > 0, got {load_resistance}"
        )
    circuit = Circuit("resistive")
    in_p = circuit.add_node("in_p")
    circuit.add_capacitor("c_par_in", in_p, Circuit.GROUND, PARASITIC_CAPACITANCE)
    circuit.add_resistor("r_load", in_p, Circuit.GROUND, load_resistance)
    circuit.add_current_input("coil", Circuit.GROUND, in_p)
    return PowerCircuit(
        matrices=circuit.assemble(),
        topology="resistive",
        supercap=None,
        input_plus="in_p",
        input_minus="gnd",
        bus_node="in_p",
        store_node=None,
        n_stages=0,
        extra={"load_resistance": load_resistance},
    )
