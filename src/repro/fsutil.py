"""Atomic filesystem write helpers — the blessed REP103 idiom.

Durable artefacts (cache entries, queue jobs, journal rounds, result
series) must never be observable half-written: a reader that races a
writer — or a writer SIGKILLed mid-``write()`` — must see either the
old complete content or the new complete content, nothing in between.
The one portable way to get that is the temp-file-then-rename dance:
stage the full payload in a temporary file *in the destination
directory* (``os.replace`` is only atomic within one filesystem),
flush it, then ``os.replace`` it over the target in a single step.

:class:`~repro.exec.store.FileStore`, the file work queue and the
file campaign journal each inline this idiom next to their own
stats/permission bookkeeping; everything else — CSV/JSON series under
``results/``, benchmark artefacts, lint baselines — goes through
these helpers.  ``repro-lint``'s REP103 rule statically rejects bare
``open(path, "w")`` in durable modules that bypasses this idiom.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from typing import IO, Any, Iterator


@contextmanager
def atomic_writer(
    path: str | os.PathLike,
    mode: str = "w",
    encoding: str | None = "utf-8",
    newline: str | None = None,
) -> Iterator[IO]:
    """Yield a handle staged in a temp file; publish it atomically.

    On a clean exit the staged file replaces ``path`` in one
    ``os.replace`` step; on any exception the staged file is removed
    and ``path`` is left exactly as it was.

    Args:
        path: final destination (its parent directory must exist).
        mode: ``"w"`` or ``"wb"``.
        encoding: text encoding (ignored for binary modes).
        newline: passed through to :func:`os.fdopen` for text modes.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    if "b" in mode:
        encoding = newline = None
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=".write-", suffix=".part"
    )
    try:
        with os.fdopen(
            fd, mode, encoding=encoding, newline=newline
        ) as handle:
            yield handle
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: str | os.PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_writer(path, "w", encoding=encoding) as handle:
        handle.write(text)


def atomic_write_json(
    path: str | os.PathLike,
    payload: Any,
    indent: int | None = 2,
    sort_keys: bool = False,
) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    The payload is fully serialized before anything is staged, so a
    non-serializable payload leaves the destination untouched.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write_text(path, text + "\n")
