"""Generic design-space explorer.

:class:`DesignExplorer` is the engine-room of the paper's flow, kept
independent of the sensor-node specifics: it takes a
:class:`~repro.core.factors.DesignSpace`, a black-box evaluator
(``dict of physical factor values -> dict of response values``) and a
response list; it runs designs, fits surfaces, and validates them at
held-out points.  :class:`~repro.core.toolkit.SensorNodeDesignToolkit`
wires it to the simulator; the tests wire it to cheap synthetic
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.doe.base import Design
from repro.core.doe.lhs import latin_hypercube
from repro.core.factors import DesignSpace
from repro.core.rsm.anova import AnovaTable, anova_table
from repro.core.rsm.fit import fit_response_surface
from repro.core.rsm.stepwise import backward_eliminate
from repro.core.rsm.surface import ResponseSurface
from repro.core.rsm.terms import ModelSpec
from repro.core.rsm.transforms import TransformedSurface, forward_transform
from repro.errors import DesignError, FitError
from repro.exec.cache import EvalCache
from repro.exec.engine import EvaluationEngine
from repro.exec.lifecycle import GCBudget
from repro.exec.store import CacheStore, resolve_store

Evaluator = Callable[[Mapping[str, float]], Mapping[str, float]]


@dataclass
class ExplorationResult:
    """Raw outcome of running a design through the evaluator.

    Attributes:
        design: the coded design that was run.
        x_coded: its matrix (copy, for convenience).
        responses: response name -> vector over runs.
        run_seconds: wall time per run (0.0 for runs served from the
            evaluation cache or collapsed onto a replicate).
        exec_stats: backend/cache statistics for *this design run*
            (counters are deltas over the run, not engine-lifetime
            totals, so a second study on the same engine does not
            inherit the first study's traffic).
    """

    design: Design
    x_coded: np.ndarray
    responses: dict[str, np.ndarray]
    run_seconds: np.ndarray
    exec_stats: dict = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        return self.x_coded.shape[0]

    @property
    def total_seconds(self) -> float:
        return float(np.sum(self.run_seconds))


@dataclass
class ValidationReport:
    """Accuracy of fitted surfaces at held-out points.

    Attributes:
        x_coded: validation points.
        reference: simulated responses there.
        predicted: RSM predictions there.
        metrics: per-response dict with rmse, max_abs_error,
            normalized_rmse (RMSE over the simulated range) and
            median_pct_error (|err| / |reference|, where defined).
    """

    x_coded: np.ndarray
    reference: dict[str, np.ndarray]
    predicted: dict[str, np.ndarray]
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)


class DesignExplorer:
    """Run designs, fit response surfaces, validate them."""

    def __init__(
        self,
        space: DesignSpace,
        evaluate: Evaluator,
        responses: Sequence[str],
        engine: EvaluationEngine | None = None,
        cache_store: CacheStore | str | None = None,
        cache_gc: GCBudget | Mapping | None = None,
        backend: str | object = "serial",
    ):
        """Args:
            space: the coded factor space.
            evaluate: black-box point evaluator.
            responses: response names the evaluator must produce.
            engine: evaluation engine wrapping ``evaluate`` (backend
                selection, memoization).  Defaults to a serial,
                uncached engine — exactly the legacy semantics.
            cache_store: shortcut for the common persistent-cache
                setup without building an engine by hand — a
                :class:`~repro.exec.store.CacheStore` (or a path spec
                for :func:`~repro.exec.store.resolve_store`) behind a
                cached engine.  A path spec builds a store the
                engine owns and closes; a ready instance stays
                caller-owned.  Mutually exclusive with ``engine``.
            cache_gc: auto-GC budget for the ``cache_store`` engine
                (a :class:`~repro.exec.lifecycle.GCBudget` or a
                mapping of its fields); the store is collected back
                under the budget after every persisting batch.
                Requires ``cache_store``; configure a ready engine's
                budget on the engine itself.
            backend: evaluation backend for the engine built here —
                ``"serial"`` (default), ``"process"``, ``"thread"``,
                ``"distributed"`` (requires ``cache_store``: the
                shared store then carries results between this
                explorer and any ``repro-worker`` processes on the
                same path), or a ready backend instance.  A ready
                ``engine`` carries its own backend.
        """
        if not responses:
            raise DesignError("need at least one response name")
        if len(set(responses)) != len(responses):
            raise DesignError(f"duplicate responses: {list(responses)}")
        self.space = space
        self.evaluate = evaluate
        self.responses = tuple(responses)
        if engine is not None and cache_store is not None:
            raise DesignError(
                "pass either a ready engine or a cache_store, not both"
            )
        if engine is not None and backend != "serial":
            raise DesignError(
                "a ready engine carries its own backend; pass one or "
                "the other"
            )
        if cache_gc is not None and cache_store is None:
            raise DesignError(
                "cache_gc requires a cache_store here; a ready "
                "engine carries its own budget"
            )
        if engine is not None:
            self.engine = engine
        elif cache_store is not None:
            self.engine = EvaluationEngine(
                evaluate,
                backend=backend,
                # A ready instance stays caller-owned (wrapped); a
                # path spec resolves to a store the engine owns.
                cache=(
                    EvalCache(store=cache_store)
                    if isinstance(cache_store, CacheStore)
                    else resolve_store(cache_store)
                ),
                cache_gc=cache_gc,
            )
        else:
            self.engine = EvaluationEngine(
                evaluate, backend=backend, cache=False
            )

    def close(self) -> None:
        """Release engine resources (pools; a store built here from a
        ``cache_store`` path spec).  Idempotent."""
        self.engine.close()

    # -- running -----------------------------------------------------------------

    def run_design(self, design: Design) -> ExplorationResult:
        """Evaluate every run of a coded design (the costly step)."""
        if design.k != self.space.k:
            raise DesignError(
                f"design has {design.k} factors, space has {self.space.k}"
            )
        n = design.n_runs
        points = [self.space.point_to_dict(row) for row in design.matrix]
        stats_before = self.engine.stats_snapshot()
        evaluations = self.engine.map_points(points)
        columns = {name: np.empty(n) for name in self.responses}
        run_seconds = np.empty(n)
        for i, evaluation in enumerate(evaluations):
            outcome = evaluation.responses
            run_seconds[i] = evaluation.seconds
            missing = set(self.responses) - set(outcome)
            if missing:
                raise DesignError(
                    f"evaluator omitted responses {sorted(missing)} at run {i}"
                )
            for name in self.responses:
                columns[name][i] = float(outcome[name])
        return ExplorationResult(
            design=design,
            x_coded=design.matrix.copy(),
            responses=columns,
            run_seconds=run_seconds,
            exec_stats=self.engine.stats(since=stats_before),
        )

    def run_matrix(
        self,
        x_coded: np.ndarray,
        kind: str = "adhoc",
        meta: Mapping | None = None,
    ) -> ExplorationResult:
        """Evaluate an arbitrary coded matrix (no generator required).

        The sequential-campaign path: acquisition strategies propose
        raw coded rows, not :class:`Design` objects.  The rows are
        wrapped in a design (so fits, ANOVA and diagnostics see the
        normal shape) and run through :meth:`run_design`.
        """
        matrix = np.atleast_2d(np.asarray(x_coded, dtype=float))
        design = Design(
            matrix=matrix, kind=kind, meta=dict(meta) if meta else {}
        )
        return self.run_design(design)

    # -- fitting ------------------------------------------------------------------

    def fit_surfaces(
        self,
        result: ExplorationResult,
        model: ModelSpec | str = "quadratic",
        stepwise_alpha: float | None = None,
        transforms: Mapping[str, str] | None = None,
    ) -> dict[str, ResponseSurface | TransformedSurface]:
        """Fit one surface per response.

        Args:
            result: runs to fit on.
            model: a :class:`ModelSpec` or one of "linear",
                "interaction", "quadratic".
            stepwise_alpha: if given, backward-eliminate at this
                significance level after the initial fit.
            transforms: optional response name -> transform name
                (``"log1p"``); the surface is fitted in the
                transformed scale and predicts in original units (see
                :mod:`repro.core.rsm.transforms`).
        """
        spec = self._resolve_model(model)
        transforms = dict(transforms) if transforms else {}
        unknown = set(transforms) - set(self.responses)
        if unknown:
            raise FitError(
                f"transforms for unknown responses: {sorted(unknown)}"
            )
        surfaces: dict[str, ResponseSurface | TransformedSurface] = {}
        for name in self.responses:
            y = result.responses[name]
            transform = transforms.get(name, "identity")
            y_fit = forward_transform(transform, y)
            if stepwise_alpha is not None:
                fitted = backward_eliminate(
                    result.x_coded,
                    y_fit,
                    spec,
                    alpha=stepwise_alpha,
                    factor_names=self.space.names,
                )
            else:
                fitted = fit_response_surface(
                    result.x_coded, y_fit, spec, factor_names=self.space.names
                )
            if transform != "identity":
                surfaces[name] = TransformedSurface(fitted, transform)
            else:
                surfaces[name] = fitted
        return surfaces

    def anova(
        self, surfaces: Mapping[str, ResponseSurface | TransformedSurface]
    ) -> dict[str, AnovaTable]:
        """ANOVA table per fitted response (in the fitted scale)."""
        out = {}
        for name, surface in surfaces.items():
            base = surface.base if isinstance(surface, TransformedSurface) else surface
            out[name] = anova_table(base)
        return out

    def _resolve_model(self, model: ModelSpec | str) -> ModelSpec:
        if isinstance(model, ModelSpec):
            if model.k != self.space.k:
                raise FitError(
                    f"model spans {model.k} factors, space has {self.space.k}"
                )
            return model
        builders = {
            "linear": ModelSpec.linear,
            "interaction": ModelSpec.interaction,
            "quadratic": ModelSpec.quadratic,
            "cubic": ModelSpec.cubic,
        }
        if model not in builders:
            raise FitError(
                f"unknown model {model!r}; pick from {sorted(builders)}"
            )
        return builders[model](self.space.k)

    # -- validation -----------------------------------------------------------------

    def validate(
        self,
        surfaces: Mapping[str, ResponseSurface],
        n_points: int = 12,
        seed: int = 42,
        x_coded: np.ndarray | None = None,
    ) -> ValidationReport:
        """Compare surfaces against fresh simulations at held-out points.

        Points default to a maximin LHS (never coincident with CCD
        lattice points).  This is the R-T2 "high accuracy" check.
        """
        if x_coded is None:
            design = latin_hypercube(n_points, self.space.k, seed=seed)
            x_coded = design.matrix
        x_coded = np.atleast_2d(np.asarray(x_coded, dtype=float))
        points = [self.space.point_to_dict(row) for row in x_coded]
        evaluations = self.engine.map_points(points)
        reference = {name: np.empty(x_coded.shape[0]) for name in surfaces}
        for i, evaluation in enumerate(evaluations):
            outcome = evaluation.responses
            for name in surfaces:
                reference[name][i] = float(outcome[name])
        predicted = {
            name: surface.predict(x_coded) for name, surface in surfaces.items()
        }
        report = ValidationReport(
            x_coded=x_coded, reference=reference, predicted=predicted
        )
        for name in surfaces:
            ref = reference[name]
            err = predicted[name] - ref
            rmse = float(np.sqrt(np.mean(err**2)))
            span = float(ref.max() - ref.min())
            with np.errstate(divide="ignore", invalid="ignore"):
                pct = np.abs(err) / np.abs(ref)
            pct = pct[np.isfinite(pct)]
            report.metrics[name] = {
                "rmse": rmse,
                "max_abs_error": float(np.max(np.abs(err))),
                "normalized_rmse": rmse / span if span > 0.0 else float("nan"),
                "median_pct_error": (
                    float(np.median(pct)) if pct.size else float("nan")
                ),
            }
        return report
