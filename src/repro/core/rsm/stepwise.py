"""Hierarchy-respecting backward elimination.

Starting from a full model (usually quadratic), repeatedly drop the
least significant removable term until every remaining term clears the
significance threshold.  A term is *removable* only if no higher-order
term that contains it remains in the model (hierarchy), and the
intercept is never dropped.  Keeping hierarchy preserves the
invariance of the model under recoding of the factors — standard RSM
practice.
"""

from __future__ import annotations

import numpy as np

from repro.core.rsm.fit import fit_response_surface
from repro.core.rsm.surface import ResponseSurface
from repro.core.rsm.terms import ModelSpec
from repro.errors import FitError


def backward_eliminate(
    x_coded: np.ndarray,
    y: np.ndarray,
    model: ModelSpec,
    alpha: float = 0.05,
    factor_names: tuple[str, ...] | None = None,
    respect_hierarchy: bool = True,
    max_drops: int | None = None,
) -> ResponseSurface:
    """Backward-eliminate insignificant terms and refit.

    Args:
        x_coded: (n, k) coded design matrix.
        y: responses.
        model: starting model.
        alpha: p-value threshold a term must beat to stay.
        factor_names: labels for reporting.
        respect_hierarchy: refuse to drop a parent of a retained term.
        max_drops: optional cap on eliminations.

    Returns:
        The reduced, refitted surface (meta: the fitted surface's
        model reflects the terms kept).
    """
    if not (0.0 < alpha < 1.0):
        raise FitError(f"alpha must be in (0, 1), got {alpha}")
    current = model
    drops = 0
    while True:
        surface = fit_response_surface(x_coded, y, current, factor_names)
        p_values = surface.stats.p_values
        if np.any(~np.isfinite(p_values)):
            # Saturated fit: no inference possible, nothing to drop on.
            return surface
        candidates = []
        for term, p_val in zip(current.terms, p_values):
            if term.is_intercept:
                continue
            if respect_hierarchy and current.children_of(term):
                continue
            if p_val > alpha:
                candidates.append((float(p_val), term))
        if not candidates:
            return surface
        candidates.sort(key=lambda item: item[0], reverse=True)
        _, worst = candidates[0]
        current = current.without(worst)
        drops += 1
        if max_drops is not None and drops >= max_drops:
            return fit_response_surface(x_coded, y, current, factor_names)
        if current.p == 1:
            # Only the intercept left.
            return fit_response_surface(x_coded, y, current, factor_names)
