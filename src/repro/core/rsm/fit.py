"""Ordinary-least-squares fitting with inference.

:func:`fit_response_surface` solves the regression via QR (never the
normal equations — the CCD axial points at alpha > 1 already push the
conditioning), derives the classical coefficient statistics, and
packages everything as a :class:`~repro.core.rsm.surface.ResponseSurface`.

Statistics follow the standard definitions: residual variance
``SSE / (n - p)``, coefficient covariance ``sigma^2 (X'X)^-1``, R^2 /
adjusted R^2 against the intercept-only baseline, and prediction R^2
from PRESS (leave-one-out through the hat diagonal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.rsm.terms import ModelSpec
from repro.errors import FitError


@dataclass(frozen=True)
class FitStatistics:
    """Goodness-of-fit and inference bundle.

    Attributes:
        n: observations.
        p: model terms.
        sse: residual sum of squares.
        sst: total (centred) sum of squares.
        sigma2: residual variance estimate (NaN when saturated).
        r_squared / adj_r_squared / pred_r_squared: the usual trio
            (pred from PRESS; NaN when a leverage hits 1).
        press: prediction sum of squares.
        std_errors / t_values / p_values: per-coefficient inference
            (NaN when the fit is saturated).
        leverages: hat diagonal per run.
    """

    n: int
    p: int
    sse: float
    sst: float
    sigma2: float
    r_squared: float
    adj_r_squared: float
    pred_r_squared: float
    press: float
    std_errors: np.ndarray
    t_values: np.ndarray
    p_values: np.ndarray
    leverages: np.ndarray

    @property
    def rmse(self) -> float:
        """Root-mean-square residual over the fit data."""
        return float(np.sqrt(self.sse / self.n))


def fit_response_surface(
    x_coded: np.ndarray,
    y: np.ndarray,
    model: ModelSpec,
    factor_names: tuple[str, ...] | None = None,
):
    """Fit one response on coded runs.

    Args:
        x_coded: (n, k) coded design matrix.
        y: response vector of length n.
        model: the polynomial model specification.
        factor_names: labels for reporting (defaults to x1..xk).

    Returns:
        :class:`~repro.core.rsm.surface.ResponseSurface`.

    Raises:
        FitError: fewer runs than terms, rank-deficient model matrix,
            or non-finite responses.
    """
    from repro.core.rsm.surface import ResponseSurface  # cycle breaker

    x_coded = np.atleast_2d(np.asarray(x_coded, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    n = x_coded.shape[0]
    if y.shape[0] != n:
        raise FitError(f"{n} runs but {y.shape[0]} responses")
    if not np.all(np.isfinite(x_coded)):
        raise FitError("non-finite values in the design matrix")
    if not np.all(np.isfinite(y)):
        raise FitError("non-finite values in the response")
    xm = model.build_matrix(x_coded)
    p = xm.shape[1]
    if n < p:
        raise FitError(
            f"{n} runs cannot identify a {p}-term model; add runs or "
            "reduce the model"
        )
    q, r = np.linalg.qr(xm)
    diag = np.abs(np.diag(r))
    if np.any(diag < 1e-10 * max(float(diag.max()), 1.0)):
        raise FitError(
            "model matrix is rank deficient on this design (aliased "
            "terms); choose a design that supports the model"
        )
    beta = np.linalg.solve(r, q.T @ y)
    fitted = xm @ beta
    residuals = y - fitted
    sse = float(residuals @ residuals)
    sst = float(np.sum((y - y.mean()) ** 2)) if model.has_intercept() else float(y @ y)
    dof = n - p
    leverages = np.sum(q**2, axis=1)
    if dof > 0:
        sigma2 = sse / dof
        r_inv = np.linalg.solve(r, np.eye(p))
        cov = sigma2 * (r_inv @ r_inv.T)
        std_errors = np.sqrt(np.maximum(np.diag(cov), 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            t_values = np.where(std_errors > 0.0, beta / std_errors, np.inf)
        p_values = 2.0 * stats.t.sf(np.abs(t_values), dof)
    else:
        sigma2 = float("nan")
        std_errors = np.full(p, np.nan)
        t_values = np.full(p, np.nan)
        p_values = np.full(p, np.nan)
    r_squared = 1.0 - sse / sst if sst > 0.0 else 1.0
    if dof > 0 and sst > 0.0:
        adj = 1.0 - (sse / dof) / (sst / (n - 1))
    else:
        adj = float("nan")
    one_minus_h = 1.0 - leverages
    if np.any(one_minus_h <= 1e-12):
        press = float("nan")
        pred_r2 = float("nan")
    else:
        press = float(np.sum((residuals / one_minus_h) ** 2))
        pred_r2 = 1.0 - press / sst if sst > 0.0 else float("nan")
    statistics = FitStatistics(
        n=n,
        p=p,
        sse=sse,
        sst=sst,
        sigma2=sigma2,
        r_squared=r_squared,
        adj_r_squared=adj,
        pred_r_squared=pred_r2,
        press=press,
        std_errors=std_errors,
        t_values=t_values,
        p_values=p_values,
        leverages=leverages,
    )
    names = (
        tuple(factor_names)
        if factor_names is not None
        else tuple(f"x{j + 1}" for j in range(model.k))
    )
    if len(names) != model.k:
        raise FitError(
            f"{len(names)} factor names for a {model.k}-factor model"
        )
    return ResponseSurface(
        model=model,
        coefficients=beta,
        factor_names=names,
        stats=statistics,
        x_train=x_coded.copy(),
        y_train=y.copy(),
    )
