"""Response-surface modelling.

* :mod:`repro.core.rsm.terms` — polynomial term algebra and model
  specifications (linear / two-factor-interaction / quadratic / ...).
* :mod:`repro.core.rsm.fit` — ordinary-least-squares fitting with
  coefficient inference and goodness-of-fit statistics.
* :mod:`repro.core.rsm.surface` — the fitted :class:`ResponseSurface`:
  prediction, gradients, stationary-point and canonical analysis.
* :mod:`repro.core.rsm.anova` — ANOVA decomposition with lack-of-fit
  against pure error.
* :mod:`repro.core.rsm.stepwise` — hierarchy-respecting backward
  elimination.
* :mod:`repro.core.rsm.crossval` — PRESS / leave-one-out and k-fold
  validation.
"""

from repro.core.rsm.terms import Term, ModelSpec
from repro.core.rsm.fit import FitStatistics, fit_response_surface
from repro.core.rsm.surface import ResponseSurface, CanonicalAnalysis
from repro.core.rsm.anova import AnovaRow, AnovaTable, anova_table
from repro.core.rsm.stepwise import backward_eliminate
from repro.core.rsm.crossval import kfold_rmse, loo_residuals, press

__all__ = [
    "Term",
    "ModelSpec",
    "FitStatistics",
    "fit_response_surface",
    "ResponseSurface",
    "CanonicalAnalysis",
    "AnovaRow",
    "AnovaTable",
    "anova_table",
    "backward_eliminate",
    "kfold_rmse",
    "loo_residuals",
    "press",
]
