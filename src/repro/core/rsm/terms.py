"""Polynomial term algebra and model specifications.

A :class:`Term` is a monomial in the coded factors, stored as an
exponent tuple — ``(1, 0, 2)`` is ``x1 * x3^2``.  A :class:`ModelSpec`
is an ordered set of terms (the intercept first by convention) that
knows how to expand a coded design matrix into the model matrix the
least-squares machinery consumes, and how to differentiate itself for
the surface analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import FitError


@dataclass(frozen=True)
class Term:
    """One monomial in coded factors.

    Attributes:
        powers: exponent per factor; all zeros is the intercept.
    """

    powers: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.powers:
            raise FitError("term needs at least one factor slot")
        if any(p < 0 for p in self.powers):
            raise FitError(f"negative exponent in term {self.powers}")

    @property
    def k(self) -> int:
        return len(self.powers)

    @property
    def order(self) -> int:
        """Total polynomial order (0 for the intercept)."""
        return sum(self.powers)

    @property
    def is_intercept(self) -> bool:
        return self.order == 0

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Evaluate over an (n, k) coded matrix -> column of length n."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.k:
            raise FitError(
                f"term over {self.k} factors evaluated on {x.shape[1]} columns"
            )
        out = np.ones(x.shape[0])
        for j, p in enumerate(self.powers):
            if p:
                out = out * x[:, j] ** p
        return out

    def derivative(self, factor: int) -> tuple[float, "Term"]:
        """d(term)/d(x_factor) as (coefficient, reduced term)."""
        if not (0 <= factor < self.k):
            raise FitError(f"factor index {factor} out of range")
        p = self.powers[factor]
        if p == 0:
            return 0.0, Term(tuple(0 for _ in self.powers))
        reduced = list(self.powers)
        reduced[factor] = p - 1
        return float(p), Term(tuple(reduced))

    def name(self, factor_names: Sequence[str] | None = None) -> str:
        """Human-readable monomial, e.g. ``x1*x3^2`` or ``C*T^2``."""
        if self.is_intercept:
            return "1"
        names = (
            list(factor_names)
            if factor_names is not None
            else [f"x{j + 1}" for j in range(self.k)]
        )
        parts = []
        for label, p in zip(names, self.powers):
            if p == 1:
                parts.append(label)
            elif p > 1:
                parts.append(f"{label}^{p}")
        return "*".join(parts)

    def parents(self) -> list["Term"]:
        """Immediate lower-order terms under model hierarchy.

        ``x1*x2`` has parents ``x1`` and ``x2``; ``x1^2`` has parent
        ``x1``.  Hierarchy-respecting stepwise elimination refuses to
        drop a parent while any of its children remain.
        """
        out = []
        for j, p in enumerate(self.powers):
            if p > 0:
                reduced = list(self.powers)
                reduced[j] = p - 1
                parent = Term(tuple(reduced))
                if not parent.is_intercept:
                    out.append(parent)
        # Deduplicate while keeping order.
        seen: set[tuple[int, ...]] = set()
        unique = []
        for t in out:
            if t.powers not in seen:
                seen.add(t.powers)
                unique.append(t)
        return unique


class ModelSpec:
    """An ordered collection of model terms."""

    def __init__(self, terms: Iterable[Term]):
        term_list = list(terms)
        if not term_list:
            raise FitError("model needs at least one term")
        k = term_list[0].k
        if any(t.k != k for t in term_list):
            raise FitError("all terms must span the same factor count")
        seen: set[tuple[int, ...]] = set()
        for t in term_list:
            if t.powers in seen:
                raise FitError(f"duplicate term {t.powers}")
            seen.add(t.powers)
        self._terms = tuple(term_list)
        self._k = k

    @property
    def terms(self) -> tuple[Term, ...]:
        return self._terms

    @property
    def k(self) -> int:
        return self._k

    @property
    def p(self) -> int:
        """Number of model terms (regression parameters)."""
        return len(self._terms)

    @property
    def max_order(self) -> int:
        return max(t.order for t in self._terms)

    def has_intercept(self) -> bool:
        return any(t.is_intercept for t in self._terms)

    def build_matrix(self, x_coded: np.ndarray) -> np.ndarray:
        """Expand an (n, k) coded matrix into the (n, p) model matrix."""
        x = np.atleast_2d(np.asarray(x_coded, dtype=float))
        if x.shape[1] != self._k:
            raise FitError(
                f"model over {self._k} factors given {x.shape[1]} columns"
            )
        return np.column_stack([t.evaluate(x) for t in self._terms])

    def term_names(self, factor_names: Sequence[str] | None = None) -> list[str]:
        return [t.name(factor_names) for t in self._terms]

    def without(self, term: Term) -> "ModelSpec":
        """A copy with one term removed."""
        remaining = [t for t in self._terms if t.powers != term.powers]
        if len(remaining) == len(self._terms):
            raise FitError(f"term {term.powers} not in model")
        return ModelSpec(remaining)

    def index_of(self, term: Term) -> int:
        for i, t in enumerate(self._terms):
            if t.powers == term.powers:
                return i
        raise FitError(f"term {term.powers} not in model")

    def children_of(self, term: Term) -> list[Term]:
        """Terms in this model that have ``term`` among their parents."""
        return [
            t
            for t in self._terms
            if any(p.powers == term.powers for p in t.parents())
        ]

    # -- standard families -------------------------------------------------------

    @classmethod
    def linear(cls, k: int) -> "ModelSpec":
        """Intercept + main effects."""
        cls._check_k(k)
        terms = [Term(tuple(0 for _ in range(k)))]
        terms += [cls._unit(k, j) for j in range(k)]
        return cls(terms)

    @classmethod
    def interaction(cls, k: int) -> "ModelSpec":
        """Linear + all two-factor interactions (the "2FI" model)."""
        spec = cls.linear(k)
        terms = list(spec.terms)
        for i, j in itertools.combinations(range(k), 2):
            powers = [0] * k
            powers[i] = 1
            powers[j] = 1
            terms.append(Term(tuple(powers)))
        return cls(terms)

    @classmethod
    def quadratic(cls, k: int) -> "ModelSpec":
        """Full second-order model: linear + 2FI + pure quadratics.

        This is the RSM workhorse the paper's flow fits on CCD data.
        """
        spec = cls.interaction(k)
        terms = list(spec.terms)
        for j in range(k):
            powers = [0] * k
            powers[j] = 2
            terms.append(Term(tuple(powers)))
        return cls(terms)

    @classmethod
    def cubic(cls, k: int) -> "ModelSpec":
        """Quadratic + pure cubic terms (for curvature stress tests)."""
        spec = cls.quadratic(k)
        terms = list(spec.terms)
        for j in range(k):
            powers = [0] * k
            powers[j] = 3
            terms.append(Term(tuple(powers)))
        return cls(terms)

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 1:
            raise FitError(f"k must be >= 1, got {k}")

    @staticmethod
    def _unit(k: int, j: int) -> Term:
        powers = [0] * k
        powers[j] = 1
        return Term(tuple(powers))

    def describe(self) -> str:
        return (
            f"model: {self.p} terms, order {self.max_order}, "
            f"{self._k} factors"
        )
