"""ANOVA with lack-of-fit decomposition.

The standard regression ANOVA the paper's "high accuracy" claim rests
on: the residual sum of squares is split into *pure error* (variation
among replicated runs — in this deterministic-simulation setting,
replicates come from centre points evaluated under different seeds or
are exactly zero) and *lack of fit* (systematic model error), with the
F-test of LoF against pure error flagging an inadequate polynomial.

Replicate groups are found by exact row matching of the coded design
(simulations are deterministic, so replicated rows agree bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.rsm.surface import ResponseSurface
from repro.errors import FitError


@dataclass(frozen=True)
class AnovaRow:
    """One line of the ANOVA table (NaNs where undefined)."""

    source: str
    sum_squares: float
    dof: int
    mean_square: float
    f_value: float
    p_value: float


@dataclass(frozen=True)
class AnovaTable:
    """Regression ANOVA with optional lack-of-fit split."""

    rows: tuple[AnovaRow, ...]

    def row(self, source: str) -> AnovaRow:
        for r in self.rows:
            if r.source == source:
                return r
        raise FitError(
            f"no ANOVA row {source!r}; have {[r.source for r in self.rows]}"
        )

    def format(self) -> str:
        lines = [
            f"{'source':<14} {'SS':>12} {'df':>5} {'MS':>12} {'F':>10} {'p':>9}"
        ]
        for r in self.rows:
            f_txt = f"{r.f_value:>10.3f}" if np.isfinite(r.f_value) else " " * 10
            p_txt = f"{r.p_value:>9.4f}" if np.isfinite(r.p_value) else " " * 9
            lines.append(
                f"{r.source:<14} {r.sum_squares:>12.5g} {r.dof:>5d} "
                f"{r.mean_square:>12.5g} {f_txt} {p_txt}"
            )
        return "\n".join(lines)


def _replicate_groups(x_coded: np.ndarray) -> list[np.ndarray]:
    """Indices of runs sharing identical coded coordinates."""
    groups: dict[bytes, list[int]] = {}
    for i, row in enumerate(np.asarray(x_coded, dtype=float)):
        key = np.round(row, 12).tobytes()
        groups.setdefault(key, []).append(i)
    return [np.array(idx) for idx in groups.values() if len(idx) > 1]


def anova_table(surface: ResponseSurface) -> AnovaTable:
    """Build the ANOVA table for a fitted surface.

    Sum-of-squares identities (property-tested):
    ``SST = SSR + SSE`` and, when replicates exist,
    ``SSE = SS_lof + SS_pe``.
    """
    x = surface.x_train
    y = surface.y_train
    n = surface.stats.n
    p = surface.stats.p
    sse = surface.stats.sse
    sst = surface.stats.sst
    ssr = sst - sse
    dof_model = p - 1 if surface.model.has_intercept() else p
    dof_resid = n - p
    ms_model = ssr / dof_model if dof_model > 0 else float("nan")
    ms_resid = sse / dof_resid if dof_resid > 0 else float("nan")
    if dof_model > 0 and dof_resid > 0 and ms_resid > 0.0:
        f_model = ms_model / ms_resid
        p_model = float(stats.f.sf(f_model, dof_model, dof_resid))
    else:
        f_model = float("nan")
        p_model = float("nan")
    rows = [
        AnovaRow("model", ssr, dof_model, ms_model, f_model, p_model),
        AnovaRow(
            "residual", sse, dof_resid, ms_resid, float("nan"), float("nan")
        ),
    ]
    groups = _replicate_groups(x)
    if groups:
        ss_pe = 0.0
        dof_pe = 0
        for idx in groups:
            values = y[idx]
            ss_pe += float(np.sum((values - values.mean()) ** 2))
            dof_pe += len(idx) - 1
        ss_lof = max(sse - ss_pe, 0.0)
        dof_lof = dof_resid - dof_pe
        ms_pe = ss_pe / dof_pe if dof_pe > 0 else float("nan")
        ms_lof = ss_lof / dof_lof if dof_lof > 0 else float("nan")
        if dof_lof > 0 and dof_pe > 0 and ms_pe > 0.0:
            f_lof = ms_lof / ms_pe
            p_lof = float(stats.f.sf(f_lof, dof_lof, dof_pe))
        else:
            f_lof = float("nan")
            p_lof = float("nan")
        rows.append(
            AnovaRow("lack-of-fit", ss_lof, dof_lof, ms_lof, f_lof, p_lof)
        )
        rows.append(
            AnovaRow(
                "pure-error", ss_pe, dof_pe, ms_pe, float("nan"), float("nan")
            )
        )
    rows.append(
        AnovaRow("total", sst, n - 1, float("nan"), float("nan"), float("nan"))
    )
    return AnovaTable(rows=tuple(rows))
