"""The fitted response surface.

:class:`ResponseSurface` is what the paper's flow hands the designer:
a polynomial approximation of one performance indicator that evaluates
in microseconds.  Beyond prediction it implements the standard
second-order analysis toolkit: gradient and Hessian, the stationary
point, canonical (eigen) analysis classifying it as a
maximum/minimum/saddle/ridge, and the steepest-ascent path used to
walk out of an exploratory region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rsm.fit import FitStatistics
from repro.core.rsm.terms import ModelSpec, Term
from repro.errors import FitError


@dataclass(frozen=True)
class CanonicalAnalysis:
    """Second-order canonical analysis at the stationary point.

    Attributes:
        stationary_point: coded coordinates of the stationary point.
        stationary_value: predicted response there.
        eigenvalues: Hessian/2 eigenvalues (the canonical B matrix).
        eigenvectors: canonical axes (columns).
        nature: "maximum", "minimum", "saddle" or "ridge".
        inside_region: whether the point lies within the coded
            [-1, 1] box (outside means the fit is extrapolating and
            the stationary point is advisory only).
    """

    stationary_point: np.ndarray
    stationary_value: float
    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    nature: str
    inside_region: bool


class ResponseSurface:
    """A fitted polynomial response surface over coded factors."""

    def __init__(
        self,
        model: ModelSpec,
        coefficients: np.ndarray,
        factor_names: tuple[str, ...],
        stats: FitStatistics,
        x_train: np.ndarray,
        y_train: np.ndarray,
    ):
        coefficients = np.asarray(coefficients, dtype=float).ravel()
        if coefficients.shape[0] != model.p:
            raise FitError(
                f"{coefficients.shape[0]} coefficients for {model.p} terms"
            )
        self.model = model
        self.coefficients = coefficients
        self.factor_names = factor_names
        self.stats = stats
        self.x_train = x_train
        self.y_train = y_train

    @property
    def k(self) -> int:
        return self.model.k

    # -- evaluation -------------------------------------------------------------

    def predict(self, x_coded: np.ndarray) -> np.ndarray:
        """Predict at (n, k) coded points (returns length-n vector)."""
        xm = self.model.build_matrix(x_coded)
        return xm @ self.coefficients

    def predict_one(self, x_coded: np.ndarray) -> float:
        """Predict at a single coded point."""
        return float(self.predict(np.atleast_2d(x_coded))[0])

    def gradient(self, x_coded: np.ndarray) -> np.ndarray:
        """Analytic gradient at one coded point."""
        x = np.asarray(x_coded, dtype=float).ravel()
        if x.shape[0] != self.k:
            raise FitError(f"point has {x.shape[0]} entries for k={self.k}")
        grad = np.zeros(self.k)
        point = x.reshape(1, -1)
        for coef, term in zip(self.coefficients, self.model.terms):
            if term.is_intercept or coef == 0.0:
                continue
            for j in range(self.k):
                factor, reduced = term.derivative(j)
                if factor:
                    grad[j] += coef * factor * float(reduced.evaluate(point)[0])
        return grad

    def hessian(self, x_coded: np.ndarray) -> np.ndarray:
        """Analytic Hessian at one coded point."""
        x = np.asarray(x_coded, dtype=float).ravel()
        point = x.reshape(1, -1)
        hess = np.zeros((self.k, self.k))
        for coef, term in zip(self.coefficients, self.model.terms):
            if term.order < 2 or coef == 0.0:
                continue
            for i in range(self.k):
                fi, ti = term.derivative(i)
                if not fi:
                    continue
                for j in range(self.k):
                    fj, tj = ti.derivative(j)
                    if fj:
                        hess[i, j] += (
                            coef * fi * fj * float(tj.evaluate(point)[0])
                        )
        return hess

    # -- second-order analysis -----------------------------------------------------

    def _require_second_order(self) -> None:
        if self.model.max_order > 2:
            raise FitError(
                "canonical analysis is defined for second-order models; "
                f"this model has order {self.model.max_order}"
            )

    def stationary_point(self) -> np.ndarray:
        """Coded coordinates where the gradient vanishes.

        Raises:
            FitError: for models above order 2 or a singular Hessian
                (a perfectly flat ridge has no unique stationary
                point).
        """
        self._require_second_order()
        origin = np.zeros(self.k)
        grad0 = self.gradient(origin)
        hess = self.hessian(origin)
        try:
            return np.linalg.solve(hess, -grad0)
        except np.linalg.LinAlgError:
            raise FitError(
                "singular Hessian: the surface has no unique stationary "
                "point (flat ridge)"
            ) from None

    def canonical_analysis(self, ridge_tolerance: float = 1e-6) -> CanonicalAnalysis:
        """Classify the stationary point by Hessian eigenstructure."""
        self._require_second_order()
        xs = self.stationary_point()
        hess = self.hessian(np.zeros(self.k))
        eigenvalues, eigenvectors = np.linalg.eigh(hess / 2.0)
        scale = float(np.max(np.abs(eigenvalues))) if eigenvalues.size else 0.0
        near_zero = np.abs(eigenvalues) <= ridge_tolerance * max(scale, 1e-300)
        if np.any(near_zero):
            nature = "ridge"
        elif np.all(eigenvalues < 0.0):
            nature = "maximum"
        elif np.all(eigenvalues > 0.0):
            nature = "minimum"
        else:
            nature = "saddle"
        return CanonicalAnalysis(
            stationary_point=xs,
            stationary_value=self.predict_one(xs),
            eigenvalues=eigenvalues,
            eigenvectors=eigenvectors,
            nature=nature,
            inside_region=bool(np.all(np.abs(xs) <= 1.0)),
        )

    def steepest_ascent_path(
        self, step: float = 0.1, n_points: int = 10, descend: bool = False
    ) -> np.ndarray:
        """Gradient-following path from the origin, coded units.

        Classical RSM practice for walking an experiment toward better
        regions; each point re-evaluates the local gradient.
        """
        if step <= 0.0:
            raise FitError(f"step must be > 0, got {step}")
        if n_points < 1:
            raise FitError(f"n_points must be >= 1, got {n_points}")
        sign = -1.0 if descend else 1.0
        path = np.zeros((n_points + 1, self.k))
        x = np.zeros(self.k)
        for i in range(1, n_points + 1):
            grad = self.gradient(x)
            norm = float(np.linalg.norm(grad))
            if norm == 0.0:
                path[i:] = x
                break
            x = x + sign * step * grad / norm
            path[i] = x
        return path

    # -- reporting ---------------------------------------------------------------------

    def coefficient_table(self) -> list[tuple[str, float, float, float, float]]:
        """Rows of (term, coefficient, std error, t, p)."""
        names = self.model.term_names(self.factor_names)
        return [
            (name, float(b), float(se), float(t), float(pv))
            for name, b, se, t, pv in zip(
                names,
                self.coefficients,
                self.stats.std_errors,
                self.stats.t_values,
                self.stats.p_values,
            )
        ]

    def summary(self) -> str:
        """Multi-line fit summary for reports."""
        s = self.stats
        lines = [
            f"response surface: {self.model.describe()}",
            (
                f"n={s.n}  R2={s.r_squared:.4f}  adjR2={s.adj_r_squared:.4f}  "
                f"predR2={s.pred_r_squared:.4f}  RMSE={s.rmse:.4g}"
            ),
            f"{'term':<24} {'coef':>12} {'se':>10} {'t':>8} {'p':>8}",
        ]
        for name, b, se, t, pv in self.coefficient_table():
            lines.append(
                f"{name:<24} {b:>12.4g} {se:>10.3g} {t:>8.2f} {pv:>8.4f}"
            )
        return "\n".join(lines)
