"""Response transforms for surface fitting.

Classical RSM practice: responses that are multiplicative in the
factors (here the data rate, ``payload / period`` with both factors
log-coded, spanning three decades) are fitted in a transformed scale
where a low-order polynomial is structurally right, and predictions
are mapped back.  ``log1p`` is used instead of a bare log so responses
that can hit exactly zero (a browned-out node delivers no data) stay
finite.

:class:`TransformedSurface` wraps a fitted
:class:`~repro.core.rsm.surface.ResponseSurface` and exposes the same
*prediction* interface in original units; the polynomial analysis
methods (gradients, canonical analysis) remain on the underlying
``base`` surface, because they describe the transformed scale.
"""

from __future__ import annotations

import numpy as np

from repro.core.rsm.surface import ResponseSurface
from repro.errors import FitError

_TRANSFORMS = {
    "identity": (lambda y: y, lambda z: z),
    "log1p": (np.log1p, np.expm1),
}


def forward_transform(name: str, y: np.ndarray) -> np.ndarray:
    """Apply a named transform to raw response values."""
    try:
        fwd, _ = _TRANSFORMS[name]
    except KeyError:
        raise FitError(
            f"unknown response transform {name!r}; have {sorted(_TRANSFORMS)}"
        ) from None
    y = np.asarray(y, dtype=float)
    if name == "log1p" and np.any(y < 0.0):
        raise FitError("log1p transform requires non-negative responses")
    return fwd(y)


class TransformedSurface:
    """A response surface fitted in a transformed scale.

    Attributes:
        base: the underlying polynomial surface (transformed units).
        transform: the transform name.
    """

    def __init__(self, base: ResponseSurface, transform: str):
        if transform not in _TRANSFORMS:
            raise FitError(f"unknown response transform {transform!r}")
        self.base = base
        self.transform = transform
        self._inverse = _TRANSFORMS[transform][1]

    # -- prediction interface (original units) -------------------------------

    @property
    def k(self) -> int:
        return self.base.k

    @property
    def model(self):
        return self.base.model

    @property
    def stats(self):
        """Fit statistics *in the transformed scale*."""
        return self.base.stats

    @property
    def factor_names(self):
        return self.base.factor_names

    def predict(self, x_coded: np.ndarray) -> np.ndarray:
        z = self.base.predict(x_coded)
        out = self._inverse(z)
        if self.transform == "log1p":
            out = np.maximum(out, 0.0)
        return out

    def predict_one(self, x_coded: np.ndarray) -> float:
        return float(self.predict(np.atleast_2d(x_coded))[0])

    def summary(self) -> str:
        return (
            f"[{self.transform}-transformed]\n" + self.base.summary()
        )
