"""Cross-validation for response surfaces.

PRESS / leave-one-out comes free from the hat diagonal of a linear
least-squares fit (no refitting); k-fold validation refits on folds
and is the honest check when leverage is concentrated (axial points of
small CCDs carry a lot of it).
"""

from __future__ import annotations

import numpy as np

from repro.core.rsm.fit import fit_response_surface
from repro.core.rsm.surface import ResponseSurface
from repro.core.rsm.terms import ModelSpec
from repro.errors import FitError


def loo_residuals(surface: ResponseSurface) -> np.ndarray:
    """Leave-one-out residuals via the hat-diagonal identity.

    ``e_loo_i = e_i / (1 - h_i)`` — exact for linear least squares.
    Runs with leverage 1 (the fit interpolates them exactly and they
    cannot be left out) yield ``inf``.
    """
    residuals = surface.y_train - surface.predict(surface.x_train)
    one_minus_h = 1.0 - surface.stats.leverages
    with np.errstate(divide="ignore"):
        return np.where(
            one_minus_h > 1e-12, residuals / one_minus_h, np.inf
        )


def press(surface: ResponseSurface) -> float:
    """Prediction sum of squares (sum of squared LOO residuals)."""
    loo = loo_residuals(surface)
    if np.any(~np.isfinite(loo)):
        return float("nan")
    return float(np.sum(loo**2))


def kfold_rmse(
    x_coded: np.ndarray,
    y: np.ndarray,
    model: ModelSpec,
    n_folds: int = 5,
    seed: int = 0,
) -> float:
    """K-fold cross-validated RMSE (refits the model per fold).

    Folds are a seeded random partition; a fold whose removal leaves
    the model unidentifiable raises, because silently skipping folds
    would overstate the validation.
    """
    x_coded = np.atleast_2d(np.asarray(x_coded, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    n = x_coded.shape[0]
    if y.shape[0] != n:
        raise FitError(f"{n} runs but {y.shape[0]} responses")
    if not (2 <= n_folds <= n):
        raise FitError(
            f"n_folds must be in [2, {n}], got {n_folds}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, n_folds)
    squared = 0.0
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        surface = fit_response_surface(x_coded[mask], y[mask], model)
        predictions = surface.predict(x_coded[fold])
        squared += float(np.sum((y[fold] - predictions) ** 2))
    return float(np.sqrt(squared / n))
