"""Central composite designs.

The workhorse of response-surface work and the design the paper's flow
defaults to: a two-level factorial core (full or resolution-V fraction)
plus axial ("star") points at distance alpha plus centre replicates.

Alpha rules implemented:

* ``"rotatable"`` — alpha = n_factorial^(1/4): prediction variance
  depends only on distance from the centre.
* ``"orthogonal"`` — alpha making the quadratic terms orthogonal to
  the intercept given the run counts.
* ``"face"`` — alpha = 1 (face-centred, keeps runs inside the box; the
  choice when physical limits are hard).
* an explicit float.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.doe.base import Design
from repro.core.doe.factorial import two_level_factorial
from repro.core.doe.fractional import fractional_factorial
from repro.errors import DesignError

#: Resolution-V fractions used for the CCD core at higher k (the CCD
#: needs a core that estimates all two-factor interactions cleanly).
_CORE_FRACTIONS: dict[int, list[str]] = {
    5: ["E=ABCD"],
    6: ["F=ABCDE"],
    7: ["G=ABCDEF"],
}


def _core_design(k: int, fraction: bool) -> Design:
    if not fraction:
        return two_level_factorial(k)
    if k not in _CORE_FRACTIONS:
        raise DesignError(
            f"no built-in resolution-V core fraction for k={k}; "
            "use fraction=False"
        )
    return fractional_factorial(k, _CORE_FRACTIONS[k])


def _orthogonal_alpha(n_f: int, n_axial: int, n_center: int) -> float:
    """Alpha making pure-quadratic contrasts orthogonal.

    Classical result (Myers, Montgomery & Anderson-Cook):
    ``alpha^4 = F * (sqrt(N) - sqrt(F))^2 / 4`` with F factorial runs
    and N total runs.
    """
    n_total = n_f + n_axial + n_center
    q = (math.sqrt(n_total) - math.sqrt(n_f)) ** 2
    return (n_f * q / 4.0) ** 0.25


def central_composite(
    k: int,
    alpha: str | float = "rotatable",
    n_center: int = 5,
    fraction: bool = False,
) -> Design:
    """Build a central composite design.

    Args:
        k: number of factors (>= 2).
        alpha: ``"rotatable"``, ``"orthogonal"``, ``"face"`` or an
            explicit positive float.
        n_center: centre-point replicates (pure-error estimation).
        fraction: use a resolution-V fractional core where available
            (k = 5..7), halving the factorial runs.

    Returns:
        Design with meta ``alpha``, ``n_factorial``, ``n_axial``,
        ``n_center``.
    """
    if k < 2:
        raise DesignError(f"CCD needs k >= 2, got {k}")
    if n_center < 0:
        raise DesignError(f"n_center must be >= 0, got {n_center}")
    core = _core_design(k, fraction)
    n_f = core.n_runs
    n_axial = 2 * k
    if isinstance(alpha, str):
        if alpha == "rotatable":
            alpha_value = n_f**0.25
        elif alpha == "orthogonal":
            alpha_value = _orthogonal_alpha(n_f, n_axial, n_center)
        elif alpha == "face":
            alpha_value = 1.0
        else:
            raise DesignError(
                f"unknown alpha rule {alpha!r}; use rotatable / orthogonal "
                "/ face or a float"
            )
    else:
        alpha_value = float(alpha)
        if alpha_value <= 0.0:
            raise DesignError(f"alpha must be > 0, got {alpha_value}")
    axial = np.zeros((n_axial, k))
    for j in range(k):
        axial[2 * j, j] = -alpha_value
        axial[2 * j + 1, j] = alpha_value
    center = np.zeros((n_center, k))
    matrix = np.vstack([core.matrix, axial, center])
    meta = {
        "alpha": alpha_value,
        "alpha_rule": alpha if isinstance(alpha, str) else "explicit",
        "n_factorial": n_f,
        "n_axial": n_axial,
        "n_center": n_center,
        "fraction": fraction,
    }
    if fraction:
        meta["core"] = core.meta
    return Design(matrix=matrix, kind="ccd", meta=meta)
