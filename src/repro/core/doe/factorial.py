"""Full factorial designs."""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.core.doe.base import Design
from repro.errors import DesignError

#: Practical cap on generated runs; beyond this a factorial design is
#: the wrong tool and the explicit error beats a memory blow-up.
_MAX_RUNS = 1_000_000


def two_level_factorial(k: int) -> Design:
    """Full 2^k design in standard (Yates) order.

    Column ``j`` alternates sign in blocks of ``2^j``, giving the
    conventional run order where the first factor cycles fastest.
    """
    if k < 1:
        raise DesignError(f"k must be >= 1, got {k}")
    n = 2**k
    if n > _MAX_RUNS:
        raise DesignError(f"2^{k} = {n} runs exceeds the {_MAX_RUNS} cap")
    matrix = np.empty((n, k))
    for j in range(k):
        block = 2**j
        pattern = np.repeat([-1.0, 1.0], block)
        matrix[:, j] = np.tile(pattern, n // (2 * block))
    return Design(matrix=matrix, kind="full-2k", meta={"k": k})


def full_factorial(levels: Sequence[int]) -> Design:
    """General full factorial with the given number of levels per factor.

    Levels are coded evenly over [-1, 1] (a 2-level factor gives ±1, a
    3-level factor -1/0/+1, and so on).  Runs are in lexicographic
    order with the *last* factor cycling fastest.
    """
    if not levels:
        raise DesignError("need at least one factor")
    if any(int(lv) < 2 for lv in levels):
        raise DesignError(f"every factor needs >= 2 levels, got {levels}")
    levels = [int(lv) for lv in levels]
    n = int(np.prod(levels))
    if n > _MAX_RUNS:
        raise DesignError(f"{n} runs exceeds the {_MAX_RUNS} cap")
    axes = [np.linspace(-1.0, 1.0, lv) for lv in levels]
    rows = list(itertools.product(*axes))
    return Design(
        matrix=np.array(rows), kind="full-factorial", meta={"levels": levels}
    )
