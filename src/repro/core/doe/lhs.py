"""Latin hypercube sampling.

Space-filling designs used here for RSM *validation* points (R-T2
checks the fitted surfaces at places no design point visited) and as a
model-free alternative in the design-choice ablation (R-A2).

Variants:

* ``"random"`` — one uniform sample per stratum, columns shuffled.
* ``"centered"`` — stratum midpoints, columns shuffled.
* ``"maximin"`` — best of ``n_candidates`` random LHS by the maximin
  (largest minimal pairwise distance) criterion.
"""

from __future__ import annotations

import numpy as np

from repro.core.doe.base import Design
from repro.errors import DesignError


def _one_lhs(
    n: int, k: int, rng: np.random.Generator, centered: bool
) -> np.ndarray:
    """One LHS on [-1, 1]^k with n strata per factor."""
    matrix = np.empty((n, k))
    for j in range(k):
        if centered:
            points = (np.arange(n) + 0.5) / n
        else:
            points = (np.arange(n) + rng.uniform(size=n)) / n
        rng.shuffle(points)
        matrix[:, j] = 2.0 * points - 1.0
    return matrix


def _min_pairwise_distance(matrix: np.ndarray) -> float:
    diff = matrix[:, None, :] - matrix[None, :, :]
    dist = np.sqrt(np.sum(diff**2, axis=-1))
    n = matrix.shape[0]
    dist[np.arange(n), np.arange(n)] = np.inf
    return float(np.min(dist))


def latin_hypercube(
    n: int,
    k: int,
    variant: str = "maximin",
    seed: int = 0,
    n_candidates: int = 32,
) -> Design:
    """Build an n-run Latin hypercube over k factors in [-1, 1]^k.

    Args:
        n: number of runs (>= 2).
        k: number of factors (>= 1).
        variant: ``"random"``, ``"centered"`` or ``"maximin"``.
        seed: RNG seed (designs are reproducible by construction).
        n_candidates: candidates scored for the maximin variant.
    """
    if n < 2:
        raise DesignError(f"n must be >= 2, got {n}")
    if k < 1:
        raise DesignError(f"k must be >= 1, got {k}")
    if variant not in ("random", "centered", "maximin"):
        raise DesignError(f"unknown LHS variant {variant!r}")
    if n_candidates < 1:
        raise DesignError(f"n_candidates must be >= 1, got {n_candidates}")
    rng = np.random.default_rng(seed)
    if variant == "random":
        matrix = _one_lhs(n, k, rng, centered=False)
    elif variant == "centered":
        matrix = _one_lhs(n, k, rng, centered=True)
    else:
        best = None
        best_score = -np.inf
        for _ in range(n_candidates):
            candidate = _one_lhs(n, k, rng, centered=False)
            score = _min_pairwise_distance(candidate)
            if score > best_score:
                best = candidate
                best_score = score
        matrix = best
    return Design(
        matrix=matrix,
        kind="lhs",
        meta={"variant": variant, "seed": seed, "n": n, "k": k},
    )
