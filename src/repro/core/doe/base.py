"""The :class:`Design` container shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DesignError


@dataclass
class Design:
    """A coded experimental design.

    Attributes:
        matrix: (n_runs, k) coded design matrix.  Factorial portions
            use ±1; centre points 0; CCD axial points ±alpha.
        kind: generator tag ("full-2k", "fractional", "pb", "ccd",
            "box-behnken", "lhs", ...).
        meta: generator-specific metadata (generator strings, alias
            structure, alpha, resolution, seed, ...).
    """

    matrix: np.ndarray
    kind: str
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=float)
        if m.ndim != 2 or m.size == 0:
            raise DesignError(
                f"design matrix must be 2-D and non-empty, got shape "
                f"{m.shape}"
            )
        self.matrix = m

    @property
    def n_runs(self) -> int:
        return self.matrix.shape[0]

    @property
    def k(self) -> int:
        """Number of factors (columns)."""
        return self.matrix.shape[1]

    def with_center_points(self, n_center: int) -> "Design":
        """Append centre-point runs (coded origin) to the design."""
        if n_center < 0:
            raise DesignError(f"n_center must be >= 0, got {n_center}")
        if n_center == 0:
            return self
        center = np.zeros((n_center, self.k))
        meta = dict(self.meta)
        meta["n_center"] = meta.get("n_center", 0) + n_center
        return Design(
            matrix=np.vstack([self.matrix, center]), kind=self.kind, meta=meta
        )

    def replicated(self, times: int) -> "Design":
        """Repeat every run ``times`` times (pure-error estimation)."""
        if times < 1:
            raise DesignError(f"times must be >= 1, got {times}")
        if times == 1:
            return self
        meta = dict(self.meta)
        meta["replicates"] = times
        return Design(
            matrix=np.repeat(self.matrix, times, axis=0),
            kind=self.kind,
            meta=meta,
        )

    def augment(self, points: np.ndarray, kind: str | None = None) -> "Design":
        """Merge extra coded runs into this design.

        The sequential-experimentation path: a campaign round adds
        infill or zoom points to what was already run, and the merged
        design must keep working as one coded matrix (same factor
        count, same coded-unit convention) so fits, ANOVA replicate
        grouping and diagnostics see one consistent experiment.

        Args:
            points: (m, k) coded rows to append (a single row is
                accepted and promoted).
            kind: optional new generator tag; default keeps this
                design's tag.

        Returns:
            A new :class:`Design`; ``meta["augmented"]`` accumulates
            how many runs have been merged in over the design's life.
        """
        extra = np.atleast_2d(np.asarray(points, dtype=float))
        if extra.size == 0:
            return self
        if extra.ndim != 2 or extra.shape[1] != self.k:
            raise DesignError(
                f"augmenting points have shape {extra.shape}; need "
                f"(m, {self.k}) coded rows"
            )
        if not np.all(np.isfinite(extra)):
            raise DesignError("augmenting points must be finite")
        meta = dict(self.meta)
        meta["augmented"] = meta.get("augmented", 0) + extra.shape[0]
        return Design(
            matrix=np.vstack([self.matrix, extra]),
            kind=self.kind if kind is None else kind,
            meta=meta,
        )

    def quality(self, model: object = None) -> dict:
        """Design-quality metrics for the intended model.

        Bundles the :mod:`repro.core.doe.diagnostics` scalars —
        maximum column correlation, D-efficiency and model-matrix
        condition number — so reports and the adaptive campaign can
        judge a design before (or instead of) spending budget on it.

        Args:
            model: a :class:`~repro.core.rsm.terms.ModelSpec`, a model
                name (``"linear"`` / ``"interaction"`` /
                ``"quadratic"`` / ``"cubic"``), or None for linear.
        """
        # Imported lazily: diagnostics imports this module.
        from repro.core.doe.diagnostics import design_summary
        from repro.core.rsm.terms import ModelSpec

        if isinstance(model, str):
            builders = {
                "linear": ModelSpec.linear,
                "interaction": ModelSpec.interaction,
                "quadratic": ModelSpec.quadratic,
                "cubic": ModelSpec.cubic,
            }
            if model not in builders:
                raise DesignError(
                    f"unknown model {model!r}; pick from {sorted(builders)}"
                )
            model = builders[model](self.k)
        return design_summary(self, model)

    def describe(self) -> str:
        """One-line summary for tables."""
        bits = [f"{self.kind}", f"{self.n_runs} runs", f"{self.k} factors"]
        if "resolution" in self.meta:
            bits.append(f"resolution {self.meta['resolution']}")
        if "alpha" in self.meta:
            bits.append(f"alpha={self.meta['alpha']:.3f}")
        if self.meta.get("augmented"):
            bits.append(f"+{self.meta['augmented']} augmented")
        return ", ".join(bits)
