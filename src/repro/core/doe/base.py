"""The :class:`Design` container shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DesignError


@dataclass
class Design:
    """A coded experimental design.

    Attributes:
        matrix: (n_runs, k) coded design matrix.  Factorial portions
            use ±1; centre points 0; CCD axial points ±alpha.
        kind: generator tag ("full-2k", "fractional", "pb", "ccd",
            "box-behnken", "lhs", ...).
        meta: generator-specific metadata (generator strings, alias
            structure, alpha, resolution, seed, ...).
    """

    matrix: np.ndarray
    kind: str
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=float)
        if m.ndim != 2 or m.size == 0:
            raise DesignError(
                f"design matrix must be 2-D and non-empty, got shape "
                f"{m.shape}"
            )
        self.matrix = m

    @property
    def n_runs(self) -> int:
        return self.matrix.shape[0]

    @property
    def k(self) -> int:
        """Number of factors (columns)."""
        return self.matrix.shape[1]

    def with_center_points(self, n_center: int) -> "Design":
        """Append centre-point runs (coded origin) to the design."""
        if n_center < 0:
            raise DesignError(f"n_center must be >= 0, got {n_center}")
        if n_center == 0:
            return self
        center = np.zeros((n_center, self.k))
        meta = dict(self.meta)
        meta["n_center"] = meta.get("n_center", 0) + n_center
        return Design(
            matrix=np.vstack([self.matrix, center]), kind=self.kind, meta=meta
        )

    def replicated(self, times: int) -> "Design":
        """Repeat every run ``times`` times (pure-error estimation)."""
        if times < 1:
            raise DesignError(f"times must be >= 1, got {times}")
        if times == 1:
            return self
        meta = dict(self.meta)
        meta["replicates"] = times
        return Design(
            matrix=np.repeat(self.matrix, times, axis=0),
            kind=self.kind,
            meta=meta,
        )

    def describe(self) -> str:
        """One-line summary for tables."""
        bits = [f"{self.kind}", f"{self.n_runs} runs", f"{self.k} factors"]
        if "resolution" in self.meta:
            bits.append(f"resolution {self.meta['resolution']}")
        if "alpha" in self.meta:
            bits.append(f"alpha={self.meta['alpha']:.3f}")
        return ", ".join(bits)
