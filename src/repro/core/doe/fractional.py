"""Regular two-level fractional factorial designs (2^(k-p)).

A fraction is specified by *generator strings* in the conventional
letter notation: for a 2^(5-1) design, ``["E=ABCD"]`` says the fifth
factor's column is the product of the first four.  From the generators
the module derives the defining relation (all products of the generator
words), the design resolution (shortest defining word), and the alias
structure for main effects and two-factor interactions — the three
things a practitioner checks before trusting a fraction.

Factors are lettered A, B, C, ... in column order.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import numpy as np

from repro.core.doe.base import Design
from repro.core.doe.factorial import two_level_factorial
from repro.errors import DesignError


def _letters(k: int) -> list[str]:
    if k > 26:
        raise DesignError(f"letter notation supports up to 26 factors, got {k}")
    return [chr(ord("A") + i) for i in range(k)]


def _word_str(word: frozenset[str]) -> str:
    return "".join(sorted(word)) if word else "I"


def _parse_generators(
    k: int, generators: Sequence[str]
) -> tuple[list[str], list[str], dict[str, frozenset[str]]]:
    """Validate generator strings; return (base, added, word map)."""
    p = len(generators)
    if p < 1:
        raise DesignError("need at least one generator for a fraction")
    if p >= k:
        raise DesignError(
            f"{p} generators for {k} factors leaves no base design"
        )
    letters = _letters(k)
    base = letters[: k - p]
    added = letters[k - p :]
    definitions: dict[str, frozenset[str]] = {}
    for gen in generators:
        text = gen.replace(" ", "").upper()
        if "=" not in text:
            raise DesignError(f"generator {gen!r} must look like 'E=ABC'")
        left, right = text.split("=", 1)
        if left not in added:
            raise DesignError(
                f"generator {gen!r}: {left!r} is not an added factor "
                f"(added factors are {added})"
            )
        if left in definitions:
            raise DesignError(f"factor {left} defined twice")
        rhs = list(right)
        if len(rhs) < 2:
            raise DesignError(
                f"generator {gen!r}: right side needs >= 2 base factors"
            )
        bad = [c for c in rhs if c not in base]
        if bad:
            raise DesignError(
                f"generator {gen!r}: {bad} are not base factors {base}"
            )
        if len(set(rhs)) != len(rhs):
            raise DesignError(f"generator {gen!r}: repeated letters")
        definitions[left] = frozenset(rhs)
    missing = [a for a in added if a not in definitions]
    if missing:
        raise DesignError(f"added factors without generators: {missing}")
    return base, added, definitions


def _defining_words(
    definitions: dict[str, frozenset[str]]
) -> list[frozenset[str]]:
    """All non-identity words of the defining relation.

    Generator ``E=ABC`` contributes the word ABCE (since I = ABCE);
    the full relation is closed under symmetric-difference products.
    """
    gen_words = [
        frozenset(rhs | {left}) for left, rhs in definitions.items()
    ]
    words: set[frozenset[str]] = set()
    for r in range(1, len(gen_words) + 1):
        for combo in itertools.combinations(gen_words, r):
            product: frozenset[str] = frozenset()
            for w in combo:
                product = product ^ w
            if product:
                words.add(product)
    return sorted(words, key=lambda w: (len(w), _word_str(w)))


def design_resolution(words: Iterable[frozenset[str]]) -> int:
    """Resolution = length of the shortest defining word."""
    lengths = [len(w) for w in words]
    if not lengths:
        raise DesignError("empty defining relation")
    return min(lengths)


def _alias_chain(
    effect: frozenset[str], words: list[frozenset[str]], max_order: int
) -> list[str]:
    """Effects aliased with ``effect``, up to ``max_order`` letters."""
    aliases = []
    for word in words:
        other = effect ^ word
        if other and len(other) <= max_order:
            aliases.append(_word_str(other))
    return sorted(set(aliases), key=lambda s: (len(s), s))


def fractional_factorial(k: int, generators: Sequence[str]) -> Design:
    """Build a 2^(k-p) regular fraction from generator strings.

    Args:
        k: total number of factors.
        generators: one string per added factor, e.g. ``["D=AB",
            "E=AC"]`` for a 2^(5-2).

    Returns:
        Design with meta keys ``generators``, ``defining_relation``
        (word strings), ``resolution``, and ``aliases`` (main effects
        and two-factor interactions mapped to their aliases up to
        order 2).
    """
    base, added, definitions = _parse_generators(k, generators)
    base_design = two_level_factorial(len(base))
    n = base_design.n_runs
    matrix = np.empty((n, k))
    matrix[:, : len(base)] = base_design.matrix
    col_of = {letter: i for i, letter in enumerate(base)}
    for j, letter in enumerate(added, start=len(base)):
        product = np.ones(n)
        for factor in definitions[letter]:
            product = product * matrix[:, col_of[factor]]
        matrix[:, j] = product
        col_of[letter] = j
    words = _defining_words(definitions)
    resolution = design_resolution(words)
    letters = base + added
    aliases: dict[str, list[str]] = {}
    for letter in letters:
        aliases[letter] = _alias_chain(frozenset(letter), words, max_order=2)
    for a, b in itertools.combinations(letters, 2):
        key = _word_str(frozenset((a, b)))
        aliases[key] = _alias_chain(frozenset((a, b)), words, max_order=2)
    return Design(
        matrix=matrix,
        kind="fractional",
        meta={
            "k": k,
            "p": len(generators),
            "generators": list(generators),
            "defining_relation": [_word_str(w) for w in words],
            "resolution": resolution,
            "aliases": aliases,
        },
    )
