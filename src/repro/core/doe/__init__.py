"""Design-of-experiments constructions.

All generators return a :class:`~repro.core.doe.base.Design` holding the
coded design matrix plus metadata (type, generators, alias structure
where applicable).  Implemented from scratch:

* :func:`two_level_factorial` / :func:`full_factorial` — 2^k and
  general full factorials.
* :func:`fractional_factorial` — 2^(k-p) fractions from generator
  strings, with defining relation, alias structure and resolution.
* :func:`plackett_burman` — Hadamard-based screening designs.
* :func:`central_composite` — CCDs with rotatable / orthogonal /
  face-centred axial spacing.
* :func:`box_behnken` — three-level BBDs for 3-7 factors.
* :func:`latin_hypercube` — random / centred / maximin LHS.
* :mod:`repro.core.doe.diagnostics` — orthogonality, D-efficiency,
  leverage, condition numbers.
"""

from repro.core.doe.base import Design
from repro.core.doe.factorial import full_factorial, two_level_factorial
from repro.core.doe.fractional import fractional_factorial, design_resolution
from repro.core.doe.plackett_burman import plackett_burman
from repro.core.doe.ccd import central_composite
from repro.core.doe.box_behnken import box_behnken
from repro.core.doe.lhs import latin_hypercube
from repro.core.doe.diagnostics import (
    column_correlations,
    condition_number,
    d_efficiency,
    design_summary,
    leverage,
    max_column_correlation,
)

__all__ = [
    "Design",
    "full_factorial",
    "two_level_factorial",
    "fractional_factorial",
    "design_resolution",
    "plackett_burman",
    "central_composite",
    "box_behnken",
    "latin_hypercube",
    "column_correlations",
    "condition_number",
    "d_efficiency",
    "design_summary",
    "leverage",
    "max_column_correlation",
]
