"""Design diagnostics.

Quantities a practitioner inspects before spending simulation budget on
a design: column orthogonality, D-efficiency of the intended model,
leverage of individual runs, and the model-matrix condition number.
Used by the R-T1 table to compare candidate designs and by the property
tests to pin down generator correctness.
"""

from __future__ import annotations

import numpy as np

from repro.core.doe.base import Design
from repro.core.rsm.terms import ModelSpec
from repro.errors import DesignError


def column_correlations(design: Design) -> np.ndarray:
    """Pairwise correlation matrix of the design columns.

    Constant columns (no spread) correlate 0 with everything by
    convention, so centre-point-only designs do not produce NaNs.
    """
    m = design.matrix
    centered = m - m.mean(axis=0)
    norms = np.sqrt(np.sum(centered**2, axis=0))
    k = m.shape[1]
    corr = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            if norms[i] == 0.0 or norms[j] == 0.0:
                value = 0.0
            else:
                value = float(
                    centered[:, i] @ centered[:, j] / (norms[i] * norms[j])
                )
            corr[i, j] = corr[j, i] = value
    return corr


def max_column_correlation(design: Design) -> float:
    """Largest |off-diagonal| column correlation (0 = orthogonal)."""
    corr = column_correlations(design)
    k = corr.shape[0]
    if k == 1:
        return 0.0
    off = corr[~np.eye(k, dtype=bool)]
    return float(np.max(np.abs(off)))


def _model_matrix(design: Design, model: ModelSpec | None) -> np.ndarray:
    if model is None:
        model = ModelSpec.linear(design.k)
    return model.build_matrix(design.matrix)


def d_efficiency(design: Design, model: ModelSpec | None = None) -> float:
    """D-efficiency of the design for a model, in [0, 1]-ish scale.

    ``D_eff = |X'X / n|^(1/p)`` with X the model matrix for coded
    factors in [-1, 1]; 1.0 corresponds to the orthogonal ±1 ideal for
    first-order models.  Singular information matrices yield 0.
    """
    x = _model_matrix(design, model)
    n, p = x.shape
    if n < p:
        return 0.0
    info = x.T @ x / n
    sign, logdet = np.linalg.slogdet(info)
    if sign <= 0:
        return 0.0
    return float(np.exp(logdet / p))


def leverage(design: Design, model: ModelSpec | None = None) -> np.ndarray:
    """Hat-matrix diagonal for each run (prediction influence).

    Raises:
        DesignError: when the model matrix is rank deficient (leverage
            is undefined; the design cannot support the model).
    """
    x = _model_matrix(design, model)
    n, p = x.shape
    if n < p or np.linalg.matrix_rank(x) < p:
        raise DesignError(
            f"design with {n} runs cannot support a {p}-term model"
        )
    q, _ = np.linalg.qr(x)
    return np.sum(q**2, axis=1)


def condition_number(design: Design, model: ModelSpec | None = None) -> float:
    """2-norm condition number of the model matrix."""
    x = _model_matrix(design, model)
    return float(np.linalg.cond(x))


def design_summary(design: Design, model: ModelSpec | None = None) -> dict:
    """Bundle of the scalar diagnostics for report tables."""
    return {
        "kind": design.kind,
        "n_runs": design.n_runs,
        "k": design.k,
        "max_correlation": max_column_correlation(design),
        "d_efficiency": d_efficiency(design, model),
        "condition_number": condition_number(design, model),
    }
