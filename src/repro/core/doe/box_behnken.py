"""Box-Behnken designs.

Three-level designs for fitting quadratic surfaces without corner
points: runs sit at the midpoints of the edges of the factor box (for
the classical constructions, on ±1 pairs with the remaining factors at
0).  Attractive when the extreme corners are physically risky — for
the node study, the (smallest store, fastest reporting, widest dead
band) corner brownouts immediately, and BBD avoids ever running it.

Constructions implemented: the standard pairwise design for k = 3..5
and the partially balanced block design for k = 6 and 7 (Box & Behnken
1960, tables 4-5).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.doe.base import Design
from repro.errors import DesignError

#: Blocks for the k=6 and k=7 constructions (factor index triples).
_BLOCKS = {
    6: [(0, 1, 3), (1, 2, 4), (2, 3, 5), (0, 3, 4), (1, 4, 5), (0, 2, 5)],
    7: [
        (3, 4, 5),
        (0, 5, 6),
        (1, 4, 6),
        (0, 1, 3),
        (2, 3, 6),
        (1, 2, 5),
        (0, 2, 4),
    ],
}

#: Default centre points recommended per k (Box & Behnken).
_DEFAULT_CENTER = {3: 3, 4: 3, 5: 6, 6: 6, 7: 6}


def box_behnken(k: int, n_center: int | None = None) -> Design:
    """Build a Box-Behnken design for 3 to 7 factors.

    Args:
        k: number of factors.
        n_center: centre replicates (defaults to the published
            recommendation for each k).
    """
    if k < 3 or k > 7:
        raise DesignError(
            f"Box-Behnken constructions cover 3..7 factors, got {k}"
        )
    n_c = _DEFAULT_CENTER[k] if n_center is None else int(n_center)
    if n_c < 0:
        raise DesignError(f"n_center must be >= 0, got {n_c}")
    signs2 = np.array(list(itertools.product((-1.0, 1.0), repeat=2)))
    rows: list[np.ndarray] = []
    if k <= 5:
        for i, j in itertools.combinations(range(k), 2):
            block = np.zeros((4, k))
            block[:, i] = signs2[:, 0]
            block[:, j] = signs2[:, 1]
            rows.append(block)
    else:
        signs3 = np.array(list(itertools.product((-1.0, 1.0), repeat=3)))
        for triple in _BLOCKS[k]:
            block = np.zeros((8, k))
            for col, idx in enumerate(triple):
                block[:, idx] = signs3[:, col]
            rows.append(block)
    matrix = np.vstack(rows + [np.zeros((n_c, k))])
    return Design(
        matrix=matrix,
        kind="box-behnken",
        meta={"k": k, "n_center": n_c},
    )
