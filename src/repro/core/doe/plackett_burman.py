"""Plackett-Burman screening designs.

PB designs estimate up to ``n - 1`` main effects in ``n`` runs (``n`` a
multiple of 4) with every pair of columns orthogonal.  They are built
here by cyclic rotation of the classical generating rows for n = 12,
20, 24 and by the Sylvester/Hadamard doubling construction for powers
of two (n = 8, 16, 32), which covers every size a node-design screening
realistically needs.
"""

from __future__ import annotations

import numpy as np

from repro.core.doe.base import Design
from repro.errors import DesignError

#: First rows of the cyclic PB constructions (Plackett & Burman 1946).
_CYCLIC_ROWS = {
    12: "++-+++---+-",
    20: "++--++++-+-+----++-",
    24: "+++++-+-++--++--+-+----",
}


def _cyclic_pb(n: int) -> np.ndarray:
    row = np.array([1.0 if c == "+" else -1.0 for c in _CYCLIC_ROWS[n]])
    size = n - 1
    matrix = np.empty((n, size))
    for i in range(size):
        matrix[i] = np.roll(row, i)
    matrix[size] = -1.0  # final all-minus run
    return matrix


def _hadamard(n: int) -> np.ndarray:
    """Sylvester Hadamard matrix of order n (n a power of two)."""
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h


def plackett_burman(k: int) -> Design:
    """Smallest Plackett-Burman design screening ``k`` main effects.

    Args:
        k: number of factors (1..23).

    Returns:
        Design with ``n`` runs, ``n`` the smallest available multiple
        of 4 exceeding ``k``; the matrix keeps only the first ``k``
        columns, all mutually orthogonal.
    """
    if k < 1:
        raise DesignError(f"k must be >= 1, got {k}")
    if k > 23:
        raise DesignError(
            f"built-in PB constructions cover up to 23 factors, got {k}"
        )
    candidates = [4, 8, 12, 16, 20, 24]
    n = next((c for c in candidates if c > k), None)
    if n is None:
        raise DesignError(f"no PB size available for k={k}")
    if n in _CYCLIC_ROWS:
        full = _cyclic_pb(n)
    else:
        # Power-of-two sizes come from the Hadamard doubling: drop the
        # all-ones column, the rest are the ±1 design columns.
        h = _hadamard(n)
        full = h[:, 1:]
    matrix = full[:, :k]
    return Design(
        matrix=np.asarray(matrix, dtype=float),
        kind="plackett-burman",
        meta={"k": k, "n": n},
    )
