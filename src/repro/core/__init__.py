"""The paper's contribution: DoE + RSM design-space exploration.

* :mod:`repro.core.factors` — design factors and coded/physical
  transforms.
* :mod:`repro.core.doe` — experimental designs (factorials, fractional
  factorials, Plackett-Burman, central composite, Box-Behnken, Latin
  hypercube) and design diagnostics.
* :mod:`repro.core.rsm` — response-surface modelling: polynomial term
  algebra, least-squares fits with inference, ANOVA with lack-of-fit,
  cross-validation, stepwise reduction, and surface analysis.
* :mod:`repro.core.desirability` / :mod:`repro.core.optimize` /
  :mod:`repro.core.pareto` — multi-response optimization on the fitted
  surfaces.
* :mod:`repro.core.explorer` / :mod:`repro.core.toolkit` — the
  DoE-based design flow end-to-end, wired to the simulator and the
  indicator registry.
"""

from repro.core.factors import Factor, DesignSpace
from repro.core.doe import (
    Design,
    full_factorial,
    two_level_factorial,
    fractional_factorial,
    plackett_burman,
    central_composite,
    box_behnken,
    latin_hypercube,
)
from repro.core.rsm import (
    Term,
    ModelSpec,
    ResponseSurface,
    fit_response_surface,
    anova_table,
)
from repro.core.desirability import Desirability, CompositeDesirability
from repro.core.optimize import optimize_surface, optimize_desirability
from repro.core.pareto import pareto_front
from repro.core.explorer import DesignExplorer, ExplorationResult
from repro.core.toolkit import SensorNodeDesignToolkit, ToolkitStudy

__all__ = [
    "Factor",
    "DesignSpace",
    "Design",
    "full_factorial",
    "two_level_factorial",
    "fractional_factorial",
    "plackett_burman",
    "central_composite",
    "box_behnken",
    "latin_hypercube",
    "Term",
    "ModelSpec",
    "ResponseSurface",
    "fit_response_surface",
    "anova_table",
    "Desirability",
    "CompositeDesirability",
    "optimize_surface",
    "optimize_desirability",
    "pareto_front",
    "DesignExplorer",
    "ExplorationResult",
    "SensorNodeDesignToolkit",
    "ToolkitStudy",
]
