"""Derringer-Suich desirability functions.

Multi-response optimization on fitted surfaces: each response maps to a
desirability in [0, 1] (1 = ideal, 0 = unacceptable), and candidate
designs are ranked by the geometric mean of the individual
desirabilities — the geometric mean makes any single unacceptable
response veto the whole candidate, which matches how designers actually
trade off "fast reporting" against "never browns out".
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.errors import OptimizationError


class Desirability:
    """One-response desirability (Derringer-Suich forms).

    Args:
        goal: ``"maximize"``, ``"minimize"`` or ``"target"``.
        low: value at (goal-dependent) zero desirability — for
            maximize: anything at or below is worthless; for minimize:
            the fully satisfying value; for target: lower zero point.
        high: counterpart of ``low`` (see above).
        target: required for the ``"target"`` goal.
        weight: exponent shaping the ramp (1 = linear; > 1 demands
            being close to the ideal; < 1 rewards any progress).
    """

    def __init__(
        self,
        goal: str,
        low: float,
        high: float,
        target: float | None = None,
        weight: float = 1.0,
    ):
        if goal not in ("maximize", "minimize", "target"):
            raise OptimizationError(f"unknown desirability goal {goal!r}")
        if not (low < high):
            raise OptimizationError(
                f"low ({low}) must be < high ({high})"
            )
        if weight <= 0.0:
            raise OptimizationError(f"weight must be > 0, got {weight}")
        if goal == "target":
            if target is None:
                raise OptimizationError("target goal needs a target value")
            if not (low < target < high):
                raise OptimizationError(
                    f"target {target} must lie inside ({low}, {high})"
                )
        elif target is not None:
            raise OptimizationError(
                f"goal {goal!r} does not take a target value"
            )
        self.goal = goal
        self.low = float(low)
        self.high = float(high)
        self.target = float(target) if target is not None else None
        self.weight = float(weight)

    def __call__(self, value: float) -> float:
        """Desirability of a response value, in [0, 1]."""
        lo, hi, w = self.low, self.high, self.weight
        if self.goal == "maximize":
            if value <= lo:
                return 0.0
            if value >= hi:
                return 1.0
            return ((value - lo) / (hi - lo)) ** w
        if self.goal == "minimize":
            if value >= hi:
                return 0.0
            if value <= lo:
                return 1.0
            return ((hi - value) / (hi - lo)) ** w
        # target
        t = self.target
        if value <= self.low or value >= self.high:
            return 0.0
        if value == t:
            return 1.0
        if value < t:
            return ((value - lo) / (t - lo)) ** w
        return ((hi - value) / (hi - t)) ** w

    def vectorized(self, values: np.ndarray) -> np.ndarray:
        """Evaluate over an array."""
        return np.array([self(float(v)) for v in np.asarray(values).ravel()])

    def describe(self) -> str:
        if self.goal == "target":
            return (
                f"target {self.target:g} in [{self.low:g}, {self.high:g}]"
                f" (w={self.weight:g})"
            )
        return f"{self.goal} over [{self.low:g}, {self.high:g}] (w={self.weight:g})"


class CompositeDesirability:
    """Geometric-mean combination of per-response desirabilities.

    Args:
        parts: response name -> :class:`Desirability`.
        importances: optional response name -> importance exponent
            (defaults to 1 for every response).
    """

    def __init__(
        self,
        parts: Mapping[str, Desirability],
        importances: Mapping[str, float] | None = None,
    ):
        if not parts:
            raise OptimizationError("need at least one response desirability")
        self.parts = dict(parts)
        weights = dict(importances) if importances else {}
        unknown = set(weights) - set(self.parts)
        if unknown:
            raise OptimizationError(
                f"importances for unknown responses: {sorted(unknown)}"
            )
        if any(w <= 0.0 for w in weights.values()):
            raise OptimizationError("importances must be > 0")
        self.importances = {
            name: float(weights.get(name, 1.0)) for name in self.parts
        }

    @property
    def response_names(self) -> tuple[str, ...]:
        return tuple(self.parts)

    def __call__(self, responses: Mapping[str, float]) -> float:
        """Composite desirability of one response dict, in [0, 1]."""
        missing = set(self.parts) - set(responses)
        if missing:
            raise OptimizationError(
                f"missing responses for desirability: {sorted(missing)}"
            )
        total_weight = sum(self.importances.values())
        log_sum = 0.0
        for name, d in self.parts.items():
            value = d(float(responses[name]))
            if value <= 0.0:
                return 0.0
            log_sum += self.importances[name] * math.log(value)
        return math.exp(log_sum / total_weight)

    def describe(self) -> str:
        return "; ".join(
            f"{name}: {d.describe()} x{self.importances[name]:g}"
            for name, d in self.parts.items()
        )
