"""The paper's design flow, end to end.

:class:`SensorNodeDesignToolkit` is the "software toolkit" the DATE'13
abstract describes: it owns the canonical 5-factor space, runs the
designed simulations on the envelope engine, fits response-surface
models for the selected performance indicators, validates them at
held-out points, and then answers design questions *practically
instantly* — point predictions, 2-D surface slices, trade-off fronts,
desirability optimization — without further simulation.

Typical use::

    toolkit = SensorNodeDesignToolkit()
    study = toolkit.run_study()              # the moderate sim budget
    study.predict(capacitance=0.5, tx_interval=8.0)   # instant
    print(study.report())
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.core.desirability import CompositeDesirability, Desirability
from repro.core.doe.base import Design
from repro.core.doe.box_behnken import box_behnken
from repro.core.doe.ccd import central_composite
from repro.core.doe.factorial import two_level_factorial
from repro.core.doe.lhs import latin_hypercube
from repro.core.explorer import (
    DesignExplorer,
    ExplorationResult,
    ValidationReport,
)
from repro.core.factors import DesignSpace, canonical_space
from repro.core.optimize import OptimizationOutcome, optimize_desirability
from repro.core.pareto import pareto_front
from repro.core.rsm.anova import AnovaTable
from repro.core.rsm.surface import ResponseSurface
from repro.core.rsm.terms import ModelSpec
from repro.errors import DesignError, OptimizationError
from repro.exec.cache import EvalCache
from repro.exec.engine import EvaluationEngine
from repro.exec.lifecycle import GCBudget
from repro.exec.store import CacheStore, resolve_store
from repro.indicators import evaluate_indicators
from repro.presets import default_harvester, default_system
from repro.sim.batch import simulate_batch
from repro.sim.envelope import EnvelopeOptions
from repro.sim.runner import MissionConfig, simulate
from repro.vibration.sources import VibrationSource

#: Response transforms applied by default: the data rate is
#: multiplicative in the (log-coded) payload and period factors, so it
#: is fitted in log1p scale where a quadratic is structurally right.
DEFAULT_TRANSFORMS = {"effective_data_rate": "log1p"}

#: Indicators the canonical study fits surfaces for.
DEFAULT_RESPONSES = (
    "average_harvested_power",
    "average_load_power",
    "effective_data_rate",
    "downtime_fraction",
    "min_store_voltage",
    "final_store_voltage",
)


@dataclass
class ToolkitStudy:
    """Everything one DoE study produced.

    Attributes:
        space: the factor space.
        exploration: raw simulated runs.
        surfaces: fitted response surfaces per indicator.
        anova: ANOVA tables per indicator.
        validation: held-out accuracy report (None if skipped).
        sim_seconds_per_run: mean mission wall time.
        rsm_eval_seconds: measured cost of one RSM point prediction.
    """

    space: DesignSpace
    exploration: ExplorationResult
    surfaces: dict[str, ResponseSurface]
    anova: dict[str, AnovaTable]
    validation: ValidationReport | None
    sim_seconds_per_run: float
    rsm_eval_seconds: float
    meta: dict = field(default_factory=dict)

    # -- instant exploration --------------------------------------------------

    def predict(self, **params: float) -> dict[str, float]:
        """Predict all responses at a physical point (microseconds)."""
        row = self.space.dict_to_coded(params)
        point = np.atleast_2d(row)
        return {
            name: float(surface.predict(point)[0])
            for name, surface in self.surfaces.items()
        }

    def surface_slice(
        self,
        response: str,
        x_factor: str,
        y_factor: str,
        n: int = 41,
        fixed: Mapping[str, float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """2-D physical-units slice of one response surface.

        Returns (x_axis, y_axis, grid) with grid[i, j] the prediction
        at (y_axis[i], x_axis[j]); other factors sit at their centre
        unless pinned via ``fixed``.
        """
        surface = self._surface(response)
        base = self.space.dict_to_coded(dict(fixed) if fixed else {})
        xi = self.space.index(x_factor)
        yi = self.space.index(y_factor)
        coded_axis = np.linspace(-1.0, 1.0, n)
        grid = np.empty((n, n))
        points = np.tile(base, (n * n, 1))
        xx, yy = np.meshgrid(coded_axis, coded_axis)
        points[:, xi] = xx.ravel()
        points[:, yi] = yy.ravel()
        grid = surface.predict(points).reshape(n, n)
        x_axis = np.array(
            [self.space.factors[xi].to_physical(c) for c in coded_axis]
        )
        y_axis = np.array(
            [self.space.factors[yi].to_physical(c) for c in coded_axis]
        )
        return x_axis, y_axis, grid

    def trade_off(
        self,
        objectives: Sequence[str],
        maximize: Sequence[bool],
        points_per_axis: int = 7,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pareto front over a dense RSM grid.

        Returns (points_coded, objective_values) of the non-dominated
        candidates.
        """
        if len(objectives) != len(maximize):
            raise OptimizationError(
                "objectives and maximize must have equal length"
            )
        import itertools

        axes = [np.linspace(-1.0, 1.0, points_per_axis)] * self.space.k
        grid = np.array(list(itertools.product(*axes)))
        values = np.column_stack(
            [self._surface(name).predict(grid) for name in objectives]
        )
        idx = pareto_front(values, maximize)
        return grid[idx], values[idx]

    def optimize(
        self,
        desirability: CompositeDesirability,
        points_per_axis: int = 7,
    ) -> tuple[OptimizationOutcome, dict[str, float]]:
        """Desirability optimization; returns (outcome, physical point)."""
        outcome = optimize_desirability(
            self.surfaces, desirability, points_per_axis=points_per_axis
        )
        return outcome, self.space.point_to_dict(outcome.x_coded)

    @property
    def speedup_sim_vs_rsm(self) -> float:
        """How many times faster one RSM evaluation is than one mission."""
        if self.rsm_eval_seconds <= 0.0:
            return float("inf")
        return self.sim_seconds_per_run / self.rsm_eval_seconds

    def _surface(self, response: str) -> ResponseSurface:
        try:
            return self.surfaces[response]
        except KeyError:
            raise DesignError(
                f"no surface for {response!r}; have {sorted(self.surfaces)}"
            ) from None

    # -- reporting ---------------------------------------------------------------

    def _design_quality_line(self) -> str:
        """Design-quality metrics for the model that was fitted.

        Operators should see what the campaign's acquisition layer
        conditions on: D-efficiency and the model-matrix condition
        number tell you whether the design actually supports the
        model before trusting its coefficients.
        """
        model = self.meta.get("model")
        if not (
            isinstance(model, str)
            and model in ("linear", "interaction", "quadratic", "cubic")
        ):
            model = "quadratic"
        try:
            quality = self.exploration.design.quality(model)
        except DesignError:  # pragma: no cover - defensive
            return "design quality: unavailable"
        return (
            f"design quality ({model} model): "
            f"D-efficiency {quality['d_efficiency']:.3f}, "
            f"max |corr| {quality['max_correlation']:.3f}, "
            f"condition number {quality['condition_number']:.1f}"
        )

    def report(self) -> str:
        """Multi-section text report of the whole study."""
        parts = [
            "== factors ==",
            self.space.describe(),
            "",
            "== design ==",
            self.exploration.design.describe(),
            self._design_quality_line(),
            f"simulated runs: {self.exploration.n_runs}, total "
            f"{self.exploration.total_seconds:.1f} s "
            f"({self.sim_seconds_per_run:.2f} s/run)",
            f"RSM evaluation: {self.rsm_eval_seconds * 1e6:.1f} us/point "
            f"(speedup x{self.speedup_sim_vs_rsm:.0f})",
        ]
        exec_stats = self.meta.get("exec") or self.exploration.exec_stats
        if exec_stats:
            parts.append("")
            parts.append("== evaluation backend ==")
            line = f"backend: {exec_stats.get('backend', '?')}"
            if exec_stats.get("backend") == "process":
                line += (
                    f" (workers={exec_stats.get('workers')}, "
                    f"chunk={exec_stats.get('last_chunk_size')})"
                )
            parts.append(line)
            parts.append(
                f"points evaluated: {exec_stats.get('points_evaluated', 0)} "
                f"in {exec_stats.get('batches_dispatched', 0)} batches "
                f"(+{exec_stats.get('replicate_hits', 0)} replicate collapses)"
            )
            cache = exec_stats.get("cache")
            if cache:
                parts.append(
                    f"evaluation cache: {cache['hits']} hits / "
                    f"{cache['misses']} misses "
                    f"(hit rate {cache['hit_rate'] * 100.0:.0f}%, "
                    f"{exec_stats.get('cache_entries', 0)} entries, "
                    f"{cache['evictions']} evictions)"
                )
                if cache.get("gc_evictions") or cache.get("compactions"):
                    parts.append(
                        f"store lifecycle: {cache['gc_evictions']} GC "
                        f"evictions, {cache['compactions']} compactions, "
                        f"{cache['bytes_reclaimed']} bytes reclaimed"
                    )
            else:
                parts.append("evaluation cache: disabled")
            maps = exec_stats.get("charging_maps")
            if maps and (
                maps.get("hits")
                or maps.get("built")
                or maps.get("loaded")
            ):
                parts.append(
                    f"charging maps: {maps['built']} built, "
                    f"{maps['loaded']} loaded from store, "
                    f"{maps['hits']} hits "
                    f"({maps['size']} cached, "
                    f"{maps['evictions']} evictions)"
                )
            round_trips = exec_stats.get("store_round_trips", 0)
            transactions = exec_stats.get("queue_transactions", 0)
            sleeps = exec_stats.get("poll_sleeps", 0)
            if round_trips or transactions or sleeps:
                parts.append(
                    f"substrate traffic: {round_trips} store round "
                    f"trips, {transactions} queue transactions, "
                    f"{sleeps} poll sleeps"
                )
        parts.append("")
        parts.append("== fit quality ==")
        rows = []
        for name, surface in self.surfaces.items():
            s = surface.stats
            rows.append(
                [
                    name,
                    s.r_squared,
                    s.adj_r_squared,
                    s.pred_r_squared,
                    s.rmse,
                ]
            )
        parts.append(
            format_table(
                ["response", "R2", "adjR2", "predR2", "RMSE"], rows
            )
        )
        if self.validation is not None:
            parts.append("")
            parts.append("== validation at held-out points ==")
            rows = [
                [
                    name,
                    m["rmse"],
                    m["max_abs_error"],
                    m["normalized_rmse"],
                    m["median_pct_error"],
                ]
                for name, m in self.validation.metrics.items()
            ]
            parts.append(
                format_table(
                    [
                        "response",
                        "RMSE",
                        "max|err|",
                        "NRMSE",
                        "median %err",
                    ],
                    rows,
                )
            )
        return "\n".join(parts)


class SensorNodeDesignToolkit:
    """The DoE-based design-flow toolkit over the canonical node.

    Args:
        space: factor space (defaults to the canonical 5 factors).
        responses: indicator names to model.
        mission_time: simulated mission length per design point, s.
        vibration: ambient excitation shared by every run (default:
            the 67 Hz machine tone).
        engine: mission engine (envelope is the laptop-scale choice).
        envelope: envelope-engine options.
        system_kwargs: extra keyword arguments forwarded to
            :func:`repro.presets.default_system` for every run (e.g.
            ``topology="bridge"``).
        backend: design-point evaluation backend — ``"serial"``,
            ``"process"`` (chunked ``multiprocessing`` fan-out),
            ``"thread"`` (``ThreadPoolExecutor`` fan-out for
            I/O-bound evaluators), ``"distributed"`` (requires
            ``cache_dir``/``cache_store``: design points are enqueued
            on the durable work queue co-located with the store and
            the study is completed cooperatively by this process and
            any ``repro-worker`` processes attached to the same
            path), or a ready
            :class:`~repro.exec.backends.EvaluationBackend`.
        workers: process/thread-backend pool size (default: all CPUs).
        chunk_size: process-backend points per dispatched chunk.
        cache: memoize evaluations content-addressed by (physical
            point, evaluation context) so design replicates, validation
            revisits and repeated studies never re-simulate.
        cache_max_entries: optional LRU bound on the in-memory
            evaluation cache (incompatible with a persistent store).
        cache_dir: persist the evaluation cache at this path — a
            directory becomes a file-per-fingerprint
            :class:`~repro.exec.store.FileStore`, a
            ``.sqlite``/``.db`` path a WAL-mode
            :class:`~repro.exec.store.SQLiteStore` — so a repeated
            study in a fresh process, or another toolkit pointed at
            the same path, re-simulates nothing.
        cache_store: a ready :class:`~repro.exec.store.CacheStore` to
            back the cache with (mutually exclusive with
            ``cache_dir``); lets several toolkits share one store
            instance.
        cache_gc: optional auto-GC budget — a
            :class:`~repro.exec.lifecycle.GCBudget` or a mapping of
            its fields (``max_bytes`` / ``max_age_seconds`` /
            ``max_entries`` / ``policy``).  The cache's store is
            collected back under the budget after every batch that
            persisted entries, so a bounded long-lived deployment
            never needs manual ``repro-cache prune`` runs.
        batch_simulation: integrate envelope batches with the
            vectorized :class:`~repro.sim.batch.EnvelopeBatchEngine`
            (bit-identical to per-point integration, several times
            faster).  Off means every point runs the scalar engine —
            the A/B lever the throughput benchmark uses.
    """

    def __init__(
        self,
        space: DesignSpace | None = None,
        responses: Sequence[str] = DEFAULT_RESPONSES,
        mission_time: float = 1800.0,
        vibration: VibrationSource | None = None,
        engine: str = "envelope",
        envelope: EnvelopeOptions | None = None,
        system_kwargs: Mapping[str, object] | None = None,
        backend: str | object = "serial",
        workers: int | None = None,
        chunk_size: int | None = None,
        cache: bool = True,
        cache_max_entries: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        cache_store: CacheStore | None = None,
        cache_gc: GCBudget | Mapping | None = None,
        batch_simulation: bool = True,
    ):
        self.space = space if space is not None else canonical_space()
        self.responses = tuple(responses)
        self.mission_time = float(mission_time)
        self.engine = engine
        self.envelope = envelope
        self.vibration = vibration
        self.system_kwargs = dict(system_kwargs) if system_kwargs else {}
        self.batch_simulation = bool(batch_simulation)
        self._shared_harvester = None
        if cache_dir is not None and cache_store is not None:
            raise DesignError(
                "pass either cache_dir or cache_store, not both"
            )
        store = cache_store if cache_store is not None else cache_dir
        if store is not None and not cache:
            raise DesignError(
                "a cache store requires cache=True; "
                "drop cache=False or the store"
            )
        if not cache:
            cache_arg: object = False
        elif store is None:
            cache_arg = EvalCache(max_entries=cache_max_entries)
        elif isinstance(store, CacheStore):
            # A ready store instance stays caller-owned (it may be
            # shared between toolkits): wrap it so close() leaves the
            # store open.
            cache_arg = EvalCache(max_entries=cache_max_entries, store=store)
        else:
            # Built here from cache_dir: hand the bare store to the
            # engine, which then owns it and closes it in close().
            cache_arg = resolve_store(store, max_entries=cache_max_entries)
        self.exec_engine = EvaluationEngine(
            self.evaluate_point,
            backend=backend,
            cache=cache_arg,
            cache_gc=cache_gc,
            # Passed as a callable: re-snapshotted per batch, so
            # reassigning e.g. ``mission_time`` after construction
            # cannot alias cache entries from the old configuration.
            context=self._evaluation_context,
            workers=workers,
            chunk_size=chunk_size,
            batch_evaluate=self.evaluate_points_timed,
        )
        self.explorer = DesignExplorer(
            self.space, self.evaluate_point, responses, engine=self.exec_engine
        )

    def _evaluation_context(self) -> dict:
        """Everything besides the point that shapes an evaluation.

        Folded into every cache fingerprint, so toolkits with different
        missions, engines, envelope options, excitations or system
        overrides never share entries even when handed the same cache.
        """
        return {
            "schema": "toolkit-eval-v1",
            "mission_time": self.mission_time,
            "engine": self.engine,
            "envelope": self.envelope,
            "vibration": self.vibration,
            "system_kwargs": self.system_kwargs,
            "responses": list(self.responses),
        }

    # -- the black box ------------------------------------------------------------

    def _mission_config(self) -> MissionConfig:
        return MissionConfig(
            t_end=self.mission_time,
            engine=self.engine,
            envelope=self.envelope,
        )

    def _build_config(self, params: Mapping[str, float], harvester=None):
        kwargs = dict(self.system_kwargs)
        for name, value in params.items():
            if name == "payload_bits":
                kwargs[name] = int(round(float(value)))
            else:
                kwargs[name] = float(value)
        if self.vibration is not None:
            kwargs["vibration"] = self.vibration
        if harvester is not None:
            # A harvester handed in via system_kwargs always wins; the
            # shared instance only replaces the default construction.
            kwargs.setdefault("harvester", harvester)
        return default_system(**kwargs)

    def evaluate_point(self, params: Mapping[str, float]) -> dict[str, float]:
        """Simulate one mission at a physical design point."""
        result = simulate(self._build_config(params), self._mission_config())
        return evaluate_indicators(result, self.responses)

    def evaluate_points(
        self, points: Sequence[Mapping[str, float]]
    ) -> list[dict[str, float]]:
        """Batch evaluation amortizing shared construction across points.

        The mission config and the (immutable) harvester are built once
        for the whole batch; only the per-point storage/node/controller
        pieces are rebuilt.  Ordering follows the input.
        """
        return [
            responses for responses, _ in self.evaluate_points_timed(points)
        ]

    def evaluate_points_timed(
        self,
        points: Sequence[Mapping[str, float]],
        progress: object = None,
    ) -> list[tuple[dict[str, float], float]]:
        """:meth:`evaluate_points` with per-point wall seconds.

        ``progress``, when given, is a zero-argument callable invoked
        repeatedly while the batch runs (between points, or once per
        vectorized step round) — distributed workers hang mid-batch
        lease heartbeats on it.
        """
        mission = self._mission_config()
        if self._shared_harvester is None:
            self._shared_harvester = default_harvester()
        points = list(points)
        if (
            self.batch_simulation
            and self.engine == "envelope"
            and len(points) > 1
            # An explicit policy instance would be shared mutable
            # state across lanes; lockstep integration needs each
            # lane's policy to itself.
            and "policy" not in self.system_kwargs
        ):
            started = time.perf_counter()
            configs = [
                self._build_config(params, harvester=self._shared_harvester)
                for params in points
            ]
            results = simulate_batch(
                configs,
                mission.t_end,
                options=mission.envelope,
                record_dt=mission.resolve_record_dt(),
                tick=progress,
            )
            share = (time.perf_counter() - started) / len(points)
            return [
                (evaluate_indicators(result, self.responses), share)
                for result in results
            ]
        out = []
        for params in points:
            started = time.perf_counter()
            config = self._build_config(
                params, harvester=self._shared_harvester
            )
            result = simulate(config, mission)
            responses = evaluate_indicators(result, self.responses)
            out.append((responses, time.perf_counter() - started))
            if progress is not None:
                progress()
        return out

    def prewarm(self, params: Mapping[str, float] | None = None) -> dict[str, float]:
        """Evaluate one point (default: the space centre) in-process.

        Populates the global envelope charging-map grids — and the
        evaluation cache — in the parent before a process-backend study
        forks its workers, so every worker inherits warm maps instead
        of re-measuring them.
        """
        if params is None:
            params = self.space.point_to_dict(
                np.zeros(self.space.k)
            )
        return self.exec_engine.prime(params)

    def close(self) -> None:
        """Release execution resources (pools; stores built from
        ``cache_dir`` — a shared ``cache_store`` stays open).
        Idempotent."""
        self.exec_engine.close()

    # -- designs -------------------------------------------------------------------

    def _build_ccd(self, **options) -> Design:
        k = self.space.k
        defaults = dict(alpha="face", n_center=3, fraction=k in (5, 6, 7))
        defaults.update(options)
        return central_composite(k, **defaults)

    def _build_box_behnken(self, **options) -> Design:
        return box_behnken(self.space.k, **options)

    def _build_lhs(self, **options) -> Design:
        k = self.space.k
        defaults = dict(n=max(4 * k, 20), seed=1)
        defaults.update(options)
        return latin_hypercube(k=k, **defaults)

    def _build_factorial(self, **options) -> Design:
        return two_level_factorial(self.space.k, **options)

    @property
    def design_kinds(self) -> tuple[str, ...]:
        """Design kind names :meth:`build_design` understands."""
        return tuple(sorted(self._design_builders()))

    def _design_builders(self) -> dict:
        return {
            "ccd": self._build_ccd,
            "box-behnken": self._build_box_behnken,
            "lhs": self._build_lhs,
            "factorial": self._build_factorial,
        }

    def build_design(self, kind: str = "ccd", **options) -> Design:
        """Construct a study design by name (see :attr:`design_kinds`)."""
        builders = self._design_builders()
        try:
            builder = builders[kind]
        except (KeyError, TypeError):
            raise DesignError(
                f"unknown design kind {kind!r}; available kinds: "
                f"{', '.join(sorted(builders))}"
            ) from None
        return builder(**options)

    # -- the flow --------------------------------------------------------------------

    def run_study(
        self,
        design: Design | str = "ccd",
        model: ModelSpec | str = "quadratic",
        stepwise_alpha: float | None = None,
        validate_points: int = 10,
        validation_seed: int = 42,
    ) -> ToolkitStudy:
        """Run the complete DoE flow (design -> simulate -> fit -> validate).

        Args:
            design: a :class:`Design` or a kind name for
                :meth:`build_design`.
            model: RSM form (default full quadratic).
            stepwise_alpha: optional backward-elimination level.
            validate_points: held-out LHS points (0 skips validation).
            validation_seed: seed for the validation LHS.
        """
        chosen = (
            design if isinstance(design, Design) else self.build_design(design)
        )
        exec_before = self.exec_engine.stats_snapshot()
        exploration = self.explorer.run_design(chosen)
        transforms = {
            name: t
            for name, t in DEFAULT_TRANSFORMS.items()
            if name in self.explorer.responses
        }
        surfaces = self.explorer.fit_surfaces(
            exploration,
            model=model,
            stepwise_alpha=stepwise_alpha,
            transforms=transforms,
        )
        anova = self.explorer.anova(surfaces)
        validation = None
        if validate_points > 0:
            validation = self.explorer.validate(
                surfaces, n_points=validate_points, seed=validation_seed
            )
        rsm_eval_seconds = self._time_rsm_eval(surfaces)
        # Mean over runs that actually simulated; cache hits and
        # replicate collapses cost (essentially) nothing.
        executed = exploration.run_seconds[exploration.run_seconds > 0.0]
        sim_seconds_per_run = (
            float(np.mean(executed)) if executed.size else 0.0
        )
        return ToolkitStudy(
            space=self.space,
            exploration=exploration,
            surfaces=surfaces,
            anova=anova,
            validation=validation,
            sim_seconds_per_run=sim_seconds_per_run,
            rsm_eval_seconds=rsm_eval_seconds,
            meta={
                "mission_time": self.mission_time,
                "engine": self.engine,
                "model": model if isinstance(model, str) else model.describe(),
                # This study's traffic (design + validation), not the
                # engine's lifetime totals — a second run_study() on
                # one toolkit reports only its own points and hits.
                "exec": self.exec_engine.stats(since=exec_before),
                "exec_lifetime": self.exec_engine.stats(),
            },
        )

    def run_campaign(
        self,
        objective=None,
        config=None,
        campaign_id: str = "default",
        journal=None,
        resume: bool = False,
        overwrite: bool = False,
    ):
        """Run an adaptive sequential campaign instead of a one-shot
        study.

        Where :meth:`run_study` spends its whole budget on one fixed
        design, a campaign alternates fit -> diagnose -> acquire ->
        evaluate rounds (see :class:`repro.campaign.Campaign`) and
        stops when the optimum stabilises — reaching the same optimum
        with measurably fewer simulations.  Rounds ride this
        toolkit's evaluation engine, so backend choice, caching and
        the distributed substrate all apply unchanged; with a
        persistent cache (``cache_dir=``), campaign state is
        journaled beside the store and a killed campaign resumes with
        zero lost evaluations.

        Args:
            objective: a :class:`repro.campaign.Objective`, a
                :class:`~repro.core.desirability.CompositeDesirability`,
                a response name (maximized), or None for
                :func:`standard_desirability`.
            config: a :class:`repro.campaign.CampaignConfig` or a
                mapping of its fields.
            campaign_id: identity in the journal.
            journal: override the journal (default: co-located with
                this toolkit's cache store).
            resume: continue the journaled campaign instead of
                starting fresh.
            overwrite: with ``resume=False``, replace an existing
                campaign of the same id.

        Returns:
            :class:`repro.campaign.CampaignResult`.
        """
        from repro.campaign import Campaign, Objective

        if objective is None:
            objective = Objective.of_desirability(standard_desirability())
        campaign = Campaign(
            self.explorer,
            objective,
            journal=journal,
            config=config,
            campaign_id=campaign_id,
            transforms=DEFAULT_TRANSFORMS,
        )
        return campaign.resume() if resume else campaign.run(
            overwrite=overwrite
        )

    @staticmethod
    def _time_rsm_eval(
        surfaces: Mapping[str, ResponseSurface], n_trials: int = 2000
    ) -> float:
        """Measure the cost of predicting all responses at one point."""
        rng = np.random.default_rng(0)
        k = next(iter(surfaces.values())).k
        points = rng.uniform(-1.0, 1.0, size=(n_trials, k))
        started = time.perf_counter()
        for name in surfaces:
            surfaces[name].predict(points)
        elapsed = time.perf_counter() - started
        return elapsed / n_trials


def standard_desirability() -> CompositeDesirability:
    """The study's canonical multi-response objective.

    Maximize data rate, require (essentially) zero downtime, and keep
    the store healthy at mission end — the energy-management goal the
    paper's scenarios revolve around.
    """
    return CompositeDesirability(
        {
            "effective_data_rate": Desirability("maximize", 0.0, 60.0),
            "downtime_fraction": Desirability("minimize", 0.0, 0.05),
            "final_store_voltage": Desirability("maximize", 2.3, 3.5),
        },
        importances={"downtime_fraction": 2.0},
    )
