"""Optimization on fitted response surfaces.

Because an RSM evaluation costs microseconds, the optimizers here are
deliberately exhaustive-ish: a dense coded-grid scan (which cannot miss
a basin inside the box) refined by L-BFGS-B from the best cells.
Single-response and composite-desirability variants share machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np
from scipy.optimize import minimize

from repro.core.desirability import CompositeDesirability
from repro.core.rsm.surface import ResponseSurface
from repro.errors import OptimizationError


@dataclass(frozen=True)
class OptimizationOutcome:
    """Result of an RSM-based optimization.

    Attributes:
        x_coded: optimizer location, coded units.
        value: objective value there (response or composite
            desirability).
        responses: per-response surface predictions at the optimum.
        evaluations: objective evaluations spent.
    """

    x_coded: np.ndarray
    value: float
    responses: dict[str, float]
    evaluations: int


def _grid_axes(k: int, points_per_axis: int) -> list[np.ndarray]:
    return [np.linspace(-1.0, 1.0, points_per_axis) for _ in range(k)]


def _refine(
    objective: Callable[[np.ndarray], float],
    x0: np.ndarray,
    maximize: bool,
) -> tuple[np.ndarray, float, int]:
    sign = -1.0 if maximize else 1.0
    counter = {"n": 0}

    def wrapped(x: np.ndarray) -> float:
        counter["n"] += 1
        return sign * objective(x)

    result = minimize(
        wrapped,
        x0,
        method="L-BFGS-B",
        bounds=[(-1.0, 1.0)] * x0.size,
        options={"maxiter": 200},
    )
    return result.x, sign * float(result.fun), counter["n"]


def optimize_surface(
    surface: ResponseSurface,
    maximize: bool = True,
    points_per_axis: int = 9,
    n_refine: int = 3,
) -> OptimizationOutcome:
    """Optimize one response over the coded box.

    Dense grid scan (``points_per_axis^k`` evaluations, vectorized)
    followed by gradient refinement from the ``n_refine`` best cells.
    """
    if points_per_axis < 2:
        raise OptimizationError(
            f"points_per_axis must be >= 2, got {points_per_axis}"
        )
    if n_refine < 1:
        raise OptimizationError(f"n_refine must be >= 1, got {n_refine}")
    k = surface.k
    axes = _grid_axes(k, points_per_axis)
    grid = np.array(list(itertools.product(*axes)))
    values = surface.predict(grid)
    evaluations = grid.shape[0]
    order = np.argsort(values)
    seeds = order[::-1][:n_refine] if maximize else order[:n_refine]
    best_x = grid[seeds[0]]
    best_val = float(values[seeds[0]])
    for seed in seeds:
        x_ref, val_ref, spent = _refine(
            lambda x: surface.predict_one(x), grid[seed], maximize
        )
        evaluations += spent
        better = val_ref > best_val if maximize else val_ref < best_val
        if better:
            best_x, best_val = x_ref, val_ref
    return OptimizationOutcome(
        x_coded=np.asarray(best_x, dtype=float),
        value=best_val,
        responses={"objective": best_val},
        evaluations=evaluations,
    )


def optimize_desirability(
    surfaces: Mapping[str, ResponseSurface],
    desirability: CompositeDesirability,
    points_per_axis: int = 7,
    n_refine: int = 5,
) -> OptimizationOutcome:
    """Maximize a composite desirability over several fitted surfaces.

    Args:
        surfaces: response name -> fitted surface (must cover every
            response the desirability references).
        desirability: the composite objective.
        points_per_axis: grid density for the global scan.
        n_refine: local refinements launched from the best cells.

    Raises:
        OptimizationError: missing surfaces, or no candidate with
            non-zero desirability anywhere on the grid (the constraints
            are mutually unsatisfiable within the box).
    """
    missing = set(desirability.response_names) - set(surfaces)
    if missing:
        raise OptimizationError(
            f"no surface fitted for responses: {sorted(missing)}"
        )
    names = list(desirability.response_names)
    ks = {surfaces[name].k for name in names}
    if len(ks) != 1:
        raise OptimizationError(
            "all surfaces must share the same factor space"
        )
    k = ks.pop()
    axes = _grid_axes(k, points_per_axis)
    grid = np.array(list(itertools.product(*axes)))
    predictions = {name: surfaces[name].predict(grid) for name in names}
    scores = np.array(
        [
            desirability(
                {name: float(predictions[name][i]) for name in names}
            )
            for i in range(grid.shape[0])
        ]
    )
    evaluations = grid.shape[0]
    if np.all(scores <= 0.0):
        raise OptimizationError(
            "composite desirability is zero everywhere on the scan grid; "
            "the response requirements are unsatisfiable in this region"
        )
    order = np.argsort(scores)[::-1][:n_refine]

    def objective(x: np.ndarray) -> float:
        point = np.atleast_2d(x)
        return desirability(
            {name: float(surfaces[name].predict(point)[0]) for name in names}
        )

    best_x = grid[order[0]]
    best_val = float(scores[order[0]])
    for seed in order:
        x_ref, val_ref, spent = _refine(objective, grid[seed], maximize=True)
        evaluations += spent
        if val_ref > best_val:
            best_x, best_val = x_ref, val_ref
    point = np.atleast_2d(best_x)
    responses = {
        name: float(surfaces[name].predict(point)[0]) for name in names
    }
    return OptimizationOutcome(
        x_coded=np.asarray(best_x, dtype=float),
        value=best_val,
        responses=responses,
        evaluations=evaluations,
    )
