"""Design factors and coded/physical transforms.

DoE designs are constructed in *coded units*: each factor spans
``[-1, +1]`` between its physical low and high levels, which is what
makes factorial designs orthogonal and response-surface coefficients
comparable across factors.  A :class:`Factor` carries the physical
range plus the transform used between coded and physical space:

* ``"linear"`` — the usual affine map;
* ``"log"`` — the coded axis is linear in log(physical), for factors
  spanning decades (report periods, check intervals, payload sizes);
* integer factors round the decoded physical value.

A :class:`DesignSpace` is an ordered collection of factors with
vectorized encode/decode helpers used by every design generator and by
the explorer when it hands sample points to the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import DesignError

_TRANSFORMS = ("linear", "log")


@dataclass(frozen=True)
class Factor:
    """One design parameter.

    Attributes:
        name: identifier used in design tables and model terms.
        low: physical value at coded -1.
        high: physical value at coded +1.
        transform: ``"linear"`` or ``"log"`` (log requires positive
            bounds and spaces the coded axis in log(physical)).
        integer: round decoded values to the nearest integer.
        units: display units for reports.
    """

    name: str
    low: float
    high: float
    transform: str = "linear"
    integer: bool = False
    units: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise DesignError("factor name must be non-empty")
        if not (self.low < self.high):
            raise DesignError(
                f"factor {self.name!r}: low ({self.low}) must be < high "
                f"({self.high})"
            )
        if self.transform not in _TRANSFORMS:
            raise DesignError(
                f"factor {self.name!r}: unknown transform {self.transform!r}"
            )
        if self.transform == "log" and self.low <= 0.0:
            raise DesignError(
                f"factor {self.name!r}: log transform requires low > 0"
            )

    # -- scalar transforms -----------------------------------------------------

    def to_physical(self, coded: float) -> float:
        """Decode a coded value (clamped to [-1, 1] is NOT applied)."""
        if self.transform == "log":
            log_low = math.log(self.low)
            log_high = math.log(self.high)
            value = math.exp(
                log_low + (coded + 1.0) * 0.5 * (log_high - log_low)
            )
        else:
            value = self.low + (coded + 1.0) * 0.5 * (self.high - self.low)
        if self.integer:
            value = float(round(value))
        return value

    def to_coded(self, physical: float) -> float:
        """Encode a physical value into coded units."""
        if self.transform == "log":
            if physical <= 0.0:
                raise DesignError(
                    f"factor {self.name!r}: cannot log-encode {physical}"
                )
            log_low = math.log(self.low)
            log_high = math.log(self.high)
            return 2.0 * (math.log(physical) - log_low) / (log_high - log_low) - 1.0
        return 2.0 * (physical - self.low) / (self.high - self.low) - 1.0

    @property
    def centre(self) -> float:
        """Physical value at coded 0."""
        return self.to_physical(0.0)

    def describe(self) -> str:
        unit = f" {self.units}" if self.units else ""
        extras = []
        if self.transform == "log":
            extras.append("log")
        if self.integer:
            extras.append("int")
        tag = f" [{', '.join(extras)}]" if extras else ""
        return f"{self.name}: {self.low:g}..{self.high:g}{unit}{tag}"


class DesignSpace:
    """Ordered collection of factors with vectorized transforms."""

    def __init__(self, factors: Sequence[Factor]):
        if not factors:
            raise DesignError("DesignSpace needs at least one factor")
        names = [f.name for f in factors]
        if len(set(names)) != len(names):
            raise DesignError(f"duplicate factor names: {names}")
        self._factors = tuple(factors)
        self._index = {f.name: i for i, f in enumerate(self._factors)}

    @property
    def factors(self) -> tuple[Factor, ...]:
        return self._factors

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self._factors)

    @property
    def k(self) -> int:
        """Number of factors."""
        return len(self._factors)

    def __len__(self) -> int:
        return len(self._factors)

    def __getitem__(self, name: str) -> Factor:
        try:
            return self._factors[self._index[name]]
        except KeyError:
            raise DesignError(
                f"unknown factor {name!r}; have {list(self.names)}"
            ) from None

    def index(self, name: str) -> int:
        """Column index of a factor."""
        if name not in self._index:
            raise DesignError(
                f"unknown factor {name!r}; have {list(self.names)}"
            )
        return self._index[name]

    # -- vectorized transforms ----------------------------------------------------

    def to_physical(self, coded: np.ndarray) -> np.ndarray:
        """Decode an (n, k) coded matrix into physical units."""
        coded = np.atleast_2d(np.asarray(coded, dtype=float))
        if coded.shape[1] != self.k:
            raise DesignError(
                f"coded matrix has {coded.shape[1]} columns for {self.k} factors"
            )
        out = np.empty_like(coded)
        for j, factor in enumerate(self._factors):
            out[:, j] = [factor.to_physical(float(c)) for c in coded[:, j]]
        return out

    def to_coded(self, physical: np.ndarray) -> np.ndarray:
        """Encode an (n, k) physical matrix into coded units."""
        physical = np.atleast_2d(np.asarray(physical, dtype=float))
        if physical.shape[1] != self.k:
            raise DesignError(
                f"physical matrix has {physical.shape[1]} columns for "
                f"{self.k} factors"
            )
        out = np.empty_like(physical)
        for j, factor in enumerate(self._factors):
            out[:, j] = [factor.to_coded(float(p)) for p in physical[:, j]]
        return out

    # -- dict-style points -----------------------------------------------------------

    def point_to_dict(self, coded_row: np.ndarray) -> dict[str, float]:
        """One coded row -> {factor name: physical value}."""
        row = np.asarray(coded_row, dtype=float).ravel()
        if row.size != self.k:
            raise DesignError(
                f"point has {row.size} entries for {self.k} factors"
            )
        return {
            f.name: f.to_physical(float(c)) for f, c in zip(self._factors, row)
        }

    def dict_to_coded(self, point: Mapping[str, float]) -> np.ndarray:
        """{factor name: physical value} -> coded row (missing = centre)."""
        row = np.zeros(self.k)
        unknown = set(point) - set(self.names)
        if unknown:
            raise DesignError(f"unknown factors in point: {sorted(unknown)}")
        for name, value in point.items():
            j = self._index[name]
            row[j] = self._factors[j].to_coded(float(value))
        return row

    def clip(self, coded: np.ndarray) -> np.ndarray:
        """Clamp coded coordinates into the [-1, 1] box."""
        return np.clip(np.asarray(coded, dtype=float), -1.0, 1.0)

    def describe(self) -> str:
        """Multi-line factor summary for reports."""
        return "\n".join(f.describe() for f in self._factors)


def canonical_space() -> DesignSpace:
    """The paper study's 5-factor space (R-T1, used throughout).

    Factors: supercapacitance, reporting interval (log), tuning dead
    band, controller check interval (log), payload size (log, integer).
    """
    return DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
            Factor("dead_band", 0.2, 3.0, units="Hz"),
            Factor("check_interval", 30.0, 600.0, transform="log", units="s"),
            Factor(
                "payload_bits",
                64,
                1024,
                transform="log",
                integer=True,
                units="bit",
            ),
        ]
    )
