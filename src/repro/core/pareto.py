"""Pareto-front extraction for response trade-offs.

The paper's promise is instant *trade-off investigation*: evaluate the
fitted surfaces on a dense grid, keep the non-dominated points, and the
designer reads the frontier (data rate vs downtime vs storage cost)
directly.  The implementation is a plain O(n^2) non-dominated filter —
grids here are thousands of points, where simplicity beats asymptotics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import OptimizationError


def pareto_front(
    objectives: np.ndarray, maximize: Sequence[bool]
) -> np.ndarray:
    """Indices of non-dominated rows.

    Args:
        objectives: (n, m) objective values, one row per candidate.
        maximize: per-column direction (True = larger is better).

    Returns:
        Sorted array of indices of the Pareto-optimal rows.  Duplicate
        objective rows are all kept (they dominate nothing mutually).
    """
    obj = np.atleast_2d(np.asarray(objectives, dtype=float))
    n, m = obj.shape
    if len(maximize) != m:
        raise OptimizationError(
            f"{len(maximize)} directions for {m} objectives"
        )
    if not np.all(np.isfinite(obj)):
        raise OptimizationError("non-finite objective values")
    # Normalize to maximization.
    signs = np.array([1.0 if mx else -1.0 for mx in maximize])
    work = obj * signs
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        # A row j dominates i if j >= i everywhere and > somewhere.
        at_least = np.all(work >= work[i], axis=1)
        strictly = np.any(work > work[i], axis=1)
        dominators = at_least & strictly
        dominators[i] = False
        if np.any(dominators & keep):
            keep[i] = False
    return np.flatnonzero(keep)


def hypervolume_2d(
    objectives: np.ndarray,
    maximize: Sequence[bool],
    reference: Sequence[float],
) -> float:
    """Dominated hypervolume of a 2-objective front (quality metric).

    Args:
        objectives: (n, 2) points (need not be pre-filtered).
        maximize: directions per objective.
        reference: the anti-ideal corner the volume is measured from.

    Returns:
        Area dominated by the front relative to the reference point.
    """
    obj = np.atleast_2d(np.asarray(objectives, dtype=float))
    if obj.shape[1] != 2:
        raise OptimizationError("hypervolume_2d needs exactly 2 objectives")
    if len(reference) != 2:
        raise OptimizationError("reference needs 2 entries")
    signs = np.array([1.0 if mx else -1.0 for mx in maximize])
    work = obj * signs
    ref = np.asarray(reference, dtype=float) * signs
    front_idx = pareto_front(work, [True, True])
    front = work[front_idx]
    # Descending in the first objective, so the second ascends along
    # the (non-dominated) front; each point adds one rectangle.
    front = front[np.argsort(-front[:, 0])]
    area = 0.0
    y_prev = ref[1]
    for x, y in front:
        if x <= ref[0] or y <= y_prev:
            continue
        area += (x - ref[0]) * (y - y_prev)
        y_prev = y
    return float(area)
