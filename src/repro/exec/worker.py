"""``repro-worker`` — drain a shared work queue, publish to the store.

A worker is the consumer half of the distributed substrate: it points
at the same path a :class:`~repro.exec.queue.DistributedBackend`
submitter uses, leases batches of design points, evaluates them with
a locally constructed evaluator, persists the responses into the
shared :class:`~repro.exec.store.CacheStore` under the submitter's
fingerprints, and marks the jobs done.  Run as many as you like, on
as many hosts as share the path::

    python -m repro.exec.worker /mnt/share/evals.sqlite \
        --evaluator mypkg.study:make_evaluator --drain --idle-timeout 60

(Installed as the ``repro-worker`` console script.)  ``--evaluator``
names a **zero-argument factory** (``module:callable``) built in the
worker process; it may return either a plain point evaluator
(``dict -> dict`` of responses) or a toolkit-like object exposing
``evaluate_points_timed`` (e.g. a
:class:`~repro.core.toolkit.SensorNodeDesignToolkit` configured like
the submitter's), in which case leased batches ride the amortized
serial path.  The factory must build the *same* evaluation the
submitter fingerprinted — a mismatched worker publishes wrong
responses under the right key, which no queue can detect.

Failure semantics: an evaluator exception fails the leased jobs back
to pending (terminally ``failed`` after the queue's ``max_attempts``);
a killed worker simply stops heartbeating and its leases are
reclaimed by any survivor.  A *live* worker heartbeats between the
points of a leased batch (via the evaluator's ``progress`` hook), so
a batch slower than the lease TTL stays leased for as long as the
worker keeps making progress.  Every publish is an atomic store
write of a deterministic payload, so crash-duplicated work is
harmless — doubly so since workers answer re-leased jobs from the
store (:attr:`WorkerReport.jobs_skipped`) instead of re-evaluating
them.  Transient substrate hiccups (busy SQLite, flaky NFS) are
absorbed by a :class:`~repro.exec.resilience.RetryPolicy` around
every store and queue call.

Workers also persist envelope charging maps through the shared store
(``--no-map-store`` opts out): the first worker to need a grid
measures and publishes it, every later worker — or restart — loads
it back instead of paying the ~seconds measurement again.  With
``--supervise N --warm`` the fleet goes one step further: the parent
builds the evaluator and preloads every persisted map *once*, then
forks N children (``os.fork``) that inherit the warm caches — a
child is born ready in milliseconds instead of seconds (falls back
to cold ``subprocess`` children where ``fork`` is unavailable).

Exit codes tell supervisors what happened: 0 clean, 1 operational
error, :data:`EXIT_EVALUATOR_CONFIG` (3) for an unusable
``--evaluator`` spec (restarting cannot help), and
:data:`EXIT_CRASH_LOOP` (4) when ``--supervise`` gave up on a
crash-looping fleet.  ``--supervise N`` runs N child workers under a
:class:`Supervisor` that restarts crashes with backoff and gives up
— with a one-line structured reason — when restarts exceed
``--max-restarts`` within ``--restart-window`` seconds.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import EvaluatorConfigError, ReproError
from repro.exec.backends import Evaluator, SerialBackend
from repro.exec.queue import (
    WorkQueue,
    default_worker_id,
    resolve_queue,
)
from repro.exec.resilience import DEFAULT_RETRY, RetryPolicy
from repro.exec.store import CacheStore, resolve_store
from repro.fsutil import atomic_write_json
from repro.obs.catalog import flush_metrics, track_worker
from repro.obs.events import emit_event, set_event_log
from repro.obs.tracing import span
from repro.sim.envelope import (
    attach_map_store,
    detach_map_store,
    preload_charging_maps,
)

PROG = "repro-worker"

#: Exit code for an unusable ``--evaluator`` spec: the worker can
#: never start, so a supervisor must not restart it.
EXIT_EVALUATOR_CONFIG = 3

#: Exit code when a supervisor abandons a crash-looping fleet.
EXIT_CRASH_LOOP = 4


def load_evaluator(
    spec: str,
) -> tuple[Evaluator, Callable | None]:
    """Build ``(evaluate, batch_evaluate)`` from a factory spec.

    ``spec`` is ``module:attribute`` naming a zero-argument callable;
    its return value is either the evaluator itself or an object with
    ``evaluate_point``/``evaluate_points_timed`` (the toolkit shape).

    Every way this can go wrong — malformed spec, failing import,
    missing attribute, uncallable factory, a factory that raises — is
    an *operator configuration* problem, raised as
    :class:`~repro.errors.EvaluatorConfigError` so ``main`` can exit
    with :data:`EXIT_EVALUATOR_CONFIG` and supervisors know not to
    restart.
    """
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise EvaluatorConfigError(
            f"evaluator spec {spec!r} is not of the form module:factory"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise EvaluatorConfigError(
            f"cannot import evaluator module {module_name!r}: {error}"
        ) from error
    try:
        factory = getattr(module, attr)
    except AttributeError as error:
        raise EvaluatorConfigError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from error
    if not callable(factory):
        raise EvaluatorConfigError(f"{spec!r} is not callable")
    try:
        built = factory()
    except Exception as error:
        raise EvaluatorConfigError(
            f"evaluator factory {spec!r} raised while building: {error}"
        ) from error
    batch = getattr(built, "evaluate_points_timed", None)
    if batch is not None:
        evaluate = getattr(built, "evaluate_point", None)
        if evaluate is None:  # pragma: no cover - defensive
            raise EvaluatorConfigError(
                f"{spec!r} returned an object with evaluate_points_timed "
                "but no evaluate_point"
            )
        return evaluate, batch
    if not callable(built):
        raise EvaluatorConfigError(
            f"{spec!r} must return an evaluator callable or a toolkit-"
            f"like object, got {type(built)!r}"
        )
    return built, None


@dataclass
class WorkerReport:
    """What one worker run did."""

    worker_id: str
    jobs_completed: int = 0
    jobs_failed: int = 0
    #: Leased jobs answered straight from the store — somebody
    #: already published them (their lease expired after the persist
    #: landed), so evaluating again would be pure waste.
    jobs_skipped: int = 0
    leases: int = 0
    seconds: float = 0.0
    eval_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_skipped": self.jobs_skipped,
            "leases": self.leases,
            "seconds": self.seconds,
            "eval_seconds": self.eval_seconds,
        }


class Worker:
    """The lease → evaluate → publish → complete loop.

    Args:
        store: where results are published (shared with submitters).
        queue: where work is leased from.
        evaluate: point evaluator.
        batch_evaluate: optional amortized batch evaluator (the
            leased batch then rides the batched serial path).
        worker_id: lease identity (default host/pid-unique).
        batch: jobs per lease — small batches spread work across
            workers and bound what a kill can delay.
        lease_seconds: lease TTL.  The worker heartbeats its leases
            between the points of a batch (and while a batched
            evaluator runs, through its ``progress`` hook), so the
            TTL needs to exceed one *point*'s evaluation — not one
            batch's.
        poll_interval: idle sleep between empty lease attempts.
        max_jobs: stop after this many jobs (None: unbounded).
        drain: exit once the queue holds no runnable or leased work.
        idle_timeout: with ``drain``, wait this long for work to
            appear before giving up (None: exit immediately when the
            queue is empty); without ``drain``, exit after this much
            continuous idleness.
        throttle: sleep this long before each lease attempt (a
            chaos/testing aid: makes lease-reclamation windows
            reproducible).  Deliberately *before* the lease, not
            after — sleeping on an already-granted lease would burn
            its TTL doing nothing and hand the jobs to whichever
            worker reclaims them first.
        retry: :class:`~repro.exec.resilience.RetryPolicy` applied to
            every store/queue call, so a briefly busy database never
            crashes the worker (None: the default policy).
        heartbeat_seconds: minimum spacing between lease-extension
            heartbeats (None: a third of ``lease_seconds``, so a
            heartbeat can fail twice before the lease lapses).
        clock: injectable ``time.time``-like source used for lease,
            heartbeat and completion timestamps (tests pin lease
            expiry deterministically with a fake clock).
    """

    def __init__(
        self,
        store: CacheStore,
        queue: WorkQueue,
        evaluate: Evaluator,
        *,
        batch_evaluate: Callable | None = None,
        worker_id: str | None = None,
        batch: int = 2,
        lease_seconds: float = 60.0,
        poll_interval: float = 0.2,
        max_jobs: int | None = None,
        drain: bool = False,
        idle_timeout: float | None = None,
        throttle: float = 0.0,
        retry: RetryPolicy | None = None,
        heartbeat_seconds: float | None = None,
        clock: Callable[[], float] | None = None,
    ):
        if batch < 1:
            raise ReproError(f"batch must be >= 1, got {batch}")
        self.store = store
        self.queue = queue
        self.worker_id = worker_id or default_worker_id()
        self.batch = batch
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.max_jobs = max_jobs
        self.drain = drain
        self.idle_timeout = idle_timeout
        self.throttle = float(throttle)
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.heartbeat_seconds = (
            float(heartbeat_seconds)
            if heartbeat_seconds is not None
            else self.lease_seconds / 3.0
        )
        self._clock = clock if clock is not None else time.time
        self._last_beat = 0.0
        self._backend = SerialBackend(
            batch_evaluate=batch_evaluate,
            progress=self._maybe_heartbeat,
        )
        self._evaluate = evaluate

    def _call(self, fn, *args, **kwargs):
        """One substrate call under the retry policy."""
        return self.retry.call(fn, *args, **kwargs)

    def _maybe_heartbeat(self) -> None:
        """Extend held leases if a heartbeat interval has elapsed.

        Hung off the evaluation backend's ``progress`` hook, so it
        fires between the points of a batch (and once per vectorized
        step round when the batched envelope path runs) — a batch
        slower than the lease TTL stays leased as long as this worker
        is actually working.  Cheap when recently beaten: one clock
        read.  Best-effort beyond the retry policy: a worker whose
        heartbeat cannot land is indistinguishable from a dead one,
        and the store-peek pass makes the resulting duplicate lease
        harmless.
        """
        now = self._clock()
        if now - self._last_beat < self.heartbeat_seconds:
            return
        self._last_beat = now
        try:
            self._call(
                self.queue.heartbeat,
                self.worker_id,
                lease_seconds=self.lease_seconds,
                now=now,
            )
        # repro-lint: allow[REP105] heartbeat is best effort: transients are already retried, and a lost lease only means some survivor re-leases jobs the store-peek pass answers for free
        except Exception:
            pass

    def _peek(self, fingerprint: str):
        """Best-effort store peek: unreadable means unknown."""
        try:
            return self._call(self.store.peek, fingerprint)
        # repro-lint: allow[REP105] best-effort peek; transients already retried by RetryPolicy, unreadable means unknown so the point is evaluated
        except Exception:
            return None

    def _load_many(self, fingerprints):
        """Best-effort batched store read: unreadable means unknown."""
        try:
            return self._call(self.store.load_many, list(fingerprints))
        # repro-lint: allow[REP105] best-effort batched read; transients already retried by RetryPolicy, unreadable means unknown so the points are evaluated
        except Exception:
            return {}

    def run(self) -> WorkerReport:
        """Work until drained / idle / at the job bound."""
        report = WorkerReport(worker_id=self.worker_id)
        # Live mirror onto the metrics registry + start/exit markers
        # in the event log; the final flush makes this worker's totals
        # visible to cross-process observers (repro-metrics).
        track_worker(report)
        emit_event("worker_start", worker=self.worker_id)
        started = time.perf_counter()
        idle_since: float | None = None
        seen_work = False
        while True:
            if (
                self.max_jobs is not None
                and report.jobs_completed + report.jobs_failed
                >= self.max_jobs
            ):
                break
            if self.throttle > 0.0:
                # Throttle *before* taking a lease: a sleep after the
                # lease would burn TTL on held jobs (and under a TTL
                # shorter than the throttle, every lease would be
                # reclaimed before this worker evaluated a thing).
                time.sleep(self.throttle)
            with span("lease", worker=self.worker_id):
                jobs = self._call(
                    self.queue.lease,
                    self.worker_id,
                    n=self.batch,
                    lease_seconds=self.lease_seconds,
                    now=self._clock(),
                )
            if not jobs:
                stats = self._call(self.queue.stats)
                if self.drain and stats.outstanding == 0:
                    # Drained — but a worker started *before* the
                    # submitter must not mistake a not-yet-fed queue
                    # for a finished one: with an idle timeout it
                    # keeps waiting for work to appear.  Finished
                    # rows from *earlier* studies on a long-lived
                    # substrate don't count as this run's work, so
                    # only leases this worker actually took (or the
                    # absence of an idle timeout) end the wait.
                    if seen_work or self.idle_timeout is None:
                        break
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if (
                    self.idle_timeout is not None
                    and now - idle_since >= self.idle_timeout
                ):
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            seen_work = True
            report.leases += 1
            # The lease was just granted its full TTL; the next
            # heartbeat is due an interval from now.
            self._last_beat = self._clock()
            self._work(jobs, report)
        report.seconds = time.perf_counter() - started
        emit_event("worker_exit", worker=self.worker_id, **report.as_dict())
        flush_metrics(self.worker_id)
        return report

    def _work(self, jobs: Sequence, report: WorkerReport) -> None:
        # Answer from the store before evaluating: a reclaimed lease
        # may carry a job whose original worker published the result
        # and only then lost its lease.  The store is authoritative
        # for deterministic evaluations, so finishing the whole lease
        # costs one batched read, not simulations — and the study's
        # evaluation count stays exact under lease-expiry chaos.
        known = self._load_many([job.job_id for job in jobs])
        runnable = []
        skipped: list[tuple[str, float]] = []
        for job in jobs:
            if job.job_id in known:
                skipped.append((job.job_id, 0.0))
            else:
                runnable.append(job)
        if skipped:
            self._call(
                self.queue.complete_many,
                self.worker_id,
                skipped,
                now=self._clock(),
            )
            report.jobs_skipped += len(skipped)
        if not runnable:
            return
        # The store pass itself takes time on a slow store, and the
        # first evaluation may spend seconds prewarming charging
        # maps before the per-point progress hook starts firing —
        # top the leases up before diving in.
        self._maybe_heartbeat()
        points = [job.point for job in runnable]
        try:
            with span("evaluate", worker=self.worker_id, batch=len(points)):
                results = self._backend.run(self._evaluate, points)
        # repro-lint: allow[REP105] evaluator exceptions of any shape must fail the job (queue.fail re-pends it until max_attempts), never the worker loop
        except Exception as error:
            if len(runnable) > 1:
                # A poison point must not take its batch-mates down
                # with it (batched, they would re-pair on every lease
                # until all of them failed terminally): retry one job
                # at a time so only the points that actually raise
                # are failed.
                for job in runnable:
                    self._work([job], report)
                return
            self._call(
                self.queue.fail,
                self.worker_id,
                runnable[0].job_id,
                error=str(error),
                now=self._clock(),
            )
            report.jobs_failed += 1
            return
        try:
            # The whole evaluated batch publishes in one store call
            # and completes in one queue transaction.
            with span("persist", worker=self.worker_id):
                self._call(
                    self.store.persist_many,
                    [
                        (job.job_id, responses)
                        for job, (responses, _seconds) in zip(runnable, results)
                    ],
                )
        # repro-lint: allow[REP105] persist transients already retried by RetryPolicy; a residual batch failure falls back to per-entry persists so only the results that truly cannot land fail their jobs
        except Exception:
            self._publish_per_job(runnable, results, report)
            return
        completions = [
            (job.job_id, seconds)
            for job, (_responses, seconds) in zip(runnable, results)
        ]
        with span("complete", worker=self.worker_id):
            self._call(
                self.queue.complete_many,
                self.worker_id,
                completions,
                now=self._clock(),
            )
        report.jobs_completed += len(completions)
        report.eval_seconds += sum(seconds for _fp, seconds in completions)

    def _publish_per_job(
        self, runnable: Sequence, results: Sequence, report: WorkerReport
    ) -> None:
        """Publish a batch entry by entry after ``persist_many`` failed.

        Per-entry persists sort out which results can still land.  A
        job whose result cannot be published must not complete —
        completing it would strand the submitter polling a store that
        will never answer — so it fails back to pending and a
        healthier host retries it.  The queue bookkeeping stays
        batched: one ``complete_many`` and one ``fail_many``.
        """
        completions: list[tuple[str, float]] = []
        failures: list[tuple[str, str]] = []
        for job, (responses, seconds) in zip(runnable, results):
            try:
                self._call(self.store.persist, job.job_id, responses)
            # repro-lint: allow[REP105] persist transients already retried by RetryPolicy; any residual failure fails the job back to pending so a healthier host retries it
            except Exception as error:
                failures.append(
                    (job.job_id, f"store persist failed: {error}")
                )
                continue
            completions.append((job.job_id, seconds))
        if completions:
            self._call(
                self.queue.complete_many,
                self.worker_id,
                completions,
                now=self._clock(),
            )
            report.jobs_completed += len(completions)
            report.eval_seconds += sum(
                seconds for _fp, seconds in completions
            )
        if failures:
            self._call(
                self.queue.fail_many,
                self.worker_id,
                failures,
                now=self._clock(),
            )
            report.jobs_failed += len(failures)


@dataclass
class SupervisorReport:
    """How a supervised fleet ended.

    Attributes:
        exit_code: 0 (all children finished cleanly),
            :data:`EXIT_EVALUATOR_CONFIG` (a child proved the
            evaluator spec unusable) or :data:`EXIT_CRASH_LOOP`.
        restarts: total children respawned.
        reason: one-line machine-readable reason when nonzero.
    """

    exit_code: int = 0
    restarts: int = 0
    reason: str = ""

    def as_dict(self) -> dict:
        return {
            "exit_code": self.exit_code,
            "restarts": self.restarts,
            "reason": self.reason,
        }


class Supervisor:
    """Keep N worker children alive; give up when that is hopeless.

    A crashed child (nonzero exit, or killed by a signal) is
    respawned after an exponentially growing backoff.  Two conditions
    end the fleet early: a child exiting
    :data:`EXIT_EVALUATOR_CONFIG` (the spec can never work — no
    restart will change that), and more than ``max_restarts``
    respawns within a sliding ``window`` (a crash loop: the evaluator
    or substrate is broken faster than restarting can hide).  In both
    cases remaining children are terminated and the report carries a
    structured reason.

    Children exiting 0 are *finished* (``--drain`` ran dry) and are
    not replaced; when the last one finishes the supervisor returns
    cleanly.

    Args:
        spawn: ``spawn(index) -> process`` — anything with ``poll()``
            (None while running, else the exit code) and
            ``terminate()``.  Injectable so crash-loop logic is
            testable without real processes.
        workers: fleet size.
        max_restarts: respawns tolerated inside ``window`` before
            giving up.
        window: sliding crash-counting window, seconds.
        backoff: first respawn delay; doubles per *recent* crash up
            to ``backoff_max``.
        poll_interval: seconds between fleet scans.
        clock / sleep: injectable time sources (tests).
        on_event: optional ``callback(event: dict)`` for one-line
            progress reporting.
    """

    def __init__(
        self,
        spawn: Callable,
        workers: int,
        *,
        max_restarts: int = 5,
        window: float = 60.0,
        backoff: float = 0.5,
        backoff_max: float = 10.0,
        poll_interval: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        on_event: Callable[[dict], None] | None = None,
    ):
        if workers < 1:
            raise ReproError(f"--supervise needs >= 1 worker, got {workers}")
        if max_restarts < 0:
            raise ReproError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.spawn = spawn
        self.workers = workers
        self.max_restarts = max_restarts
        self.window = float(window)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self.poll_interval = float(poll_interval)
        self._clock = clock
        self._sleep = sleep
        self._on_event = on_event
        self._crash_times: list[float] = []

    def _emit(self, **event) -> None:
        if self._on_event is not None:
            self._on_event(event)

    def _recent_crashes(self) -> int:
        horizon = self._clock() - self.window
        self._crash_times = [t for t in self._crash_times if t >= horizon]
        return len(self._crash_times)

    def run(self) -> SupervisorReport:
        report = SupervisorReport()
        fleet: dict[int, object | None] = {
            i: self.spawn(i) for i in range(self.workers)
        }
        self._emit(event="started", workers=self.workers)
        while any(proc is not None for proc in fleet.values()):
            for index, proc in list(fleet.items()):
                if proc is None:
                    continue
                code = proc.poll()
                if code is None:
                    continue
                if code == 0:
                    fleet[index] = None
                    self._emit(event="finished", worker=index)
                    continue
                if code == EXIT_EVALUATOR_CONFIG:
                    report.exit_code = EXIT_EVALUATOR_CONFIG
                    report.reason = json.dumps(
                        {
                            "error": "evaluator-config",
                            "worker": index,
                            "detail": "child exit "
                            f"{EXIT_EVALUATOR_CONFIG}: the evaluator "
                            "spec cannot work; not restarting",
                        },
                        sort_keys=True,
                    )
                    self._terminate(fleet)
                    return report
                self._crash_times.append(self._clock())
                recent = self._recent_crashes()
                self._emit(
                    event="crashed", worker=index, code=code, recent=recent
                )
                if recent > self.max_restarts:
                    report.exit_code = EXIT_CRASH_LOOP
                    report.reason = json.dumps(
                        {
                            "error": "crash-loop",
                            "restarts": recent,
                            "window_seconds": self.window,
                            "last_exit_code": code,
                        },
                        sort_keys=True,
                    )
                    self._terminate(fleet)
                    return report
                delay = min(
                    self.backoff * (2 ** max(recent - 1, 0)),
                    self.backoff_max,
                )
                self._sleep(delay)
                fleet[index] = self.spawn(index)
                report.restarts += 1
                self._emit(
                    event="restarted", worker=index, backoff=delay
                )
            if any(proc is not None for proc in fleet.values()):
                self._sleep(self.poll_interval)
        self._emit(event="drained", restarts=report.restarts)
        return report

    def _terminate(self, fleet: Mapping[int, object | None]) -> None:
        for proc in fleet.values():
            if proc is not None and proc.poll() is None:
                try:
                    proc.terminate()
                # repro-lint: allow[REP105] supervisor shutdown is best effort; a child dying on its own races terminate()
                except Exception:  # pragma: no cover - best effort
                    pass


def _child_argv(argv: Sequence[str]) -> list[str]:
    """The argv a supervised child runs with: the parent's, minus the
    supervision flags (a child supervising children would fork-bomb)
    and minus ``--worker-id`` (children must hold distinct lease
    identities, so they fall back to the pid-unique default)."""
    drop_with_value = {
        "--supervise",
        "--max-restarts",
        "--restart-window",
        "--worker-id",
        # Re-appended by the supervisor so children inherit the
        # (possibly defaulted) aggregation directory.
        "--report-dir",
    }
    drop_bare = {"--warm"}
    out: list[str] = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg in drop_with_value:
            skip = True
            continue
        if arg in drop_bare:
            continue
        if any(arg.startswith(f"{flag}=") for flag in drop_with_value):
            continue
        out.append(arg)
    return out


class _ForkedChild:
    """A ``subprocess.Popen``-shaped handle over an ``os.fork`` child.

    The :class:`Supervisor` only needs ``poll()`` and ``terminate()``;
    this provides them for warm-mode children, which are forked from
    the prewarmed parent rather than exec'd cold.
    """

    def __init__(self, pid: int):
        self.pid = pid
        self._code: int | None = None

    def poll(self) -> int | None:
        if self._code is None:
            pid, status = os.waitpid(self.pid, os.WNOHANG)
            if pid != 0:
                self._code = os.waitstatus_to_exitcode(status)
        return self._code

    def terminate(self) -> None:
        if self.poll() is None:
            os.kill(self.pid, signal.SIGTERM)


def _warm_spawn_factory(args) -> Callable:
    """Build the warm-mode ``spawn`` for the supervisor.

    All the expensive per-process startup happens here, once, in the
    supervising parent: the evaluator factory runs (seconds of
    toolkit construction), and every charging map persisted in the
    shared store is preloaded into the global map cache.  ``spawn``
    then just ``os.fork``\\ s — children are born with the evaluator
    built and the maps hot in inherited memory, so their time-to-
    first-lease is process-spawn latency, not cold-start latency.
    Restarted crashers get the same warm start.

    The parent's store connection is closed before any fork: SQLite
    handles (and most file locks) must not be shared across a fork.
    Children re-resolve their own store and queue.
    """
    prepare_started = time.perf_counter()
    evaluate, batch_evaluate = load_evaluator(args.evaluator)
    # Children must hold distinct lease identities (the subprocess
    # path drops --worker-id from child argv for the same reason);
    # each fork falls back to its own pid-unique default.
    args.worker_id = None
    if not args.no_map_store:
        store = resolve_store(args.store)
        try:
            preload_charging_maps(store)
        finally:
            store.close()
    spawn_seconds: list[float] = []

    def spawn(index: int):
        forked_at = time.perf_counter()
        pid = os.fork()
        if pid != 0:
            spawn_seconds.append(time.perf_counter() - forked_at)
            return _ForkedChild(pid)
        code = 1
        try:
            # Siblings share one inherited stdout: line buffering makes
            # each child's report a single atomic pipe write instead of
            # risking torn interleavings at exit-time flush.
            sys.stdout.reconfigure(line_buffering=True)
            sys.stderr.reconfigure(line_buffering=True)
            code = _run_single(args, evaluate, batch_evaluate)
        # repro-lint: allow[REP105] a forked child must never fall through into the parent's supervisor loop; any escape is converted to a crash exit
        except Exception:
            code = 1
        finally:
            # _exit skips stdio flushing along with atexit hooks, so
            # push the child's report out before leaving.
            try:
                sys.stdout.flush()
                sys.stderr.flush()
            finally:
                # _exit, not exit: the child must not run the parent's
                # atexit hooks or unwind into the supervisor loop.
                os._exit(code)

    spawn.prepare_seconds = time.perf_counter() - prepare_started
    spawn.spawn_seconds = spawn_seconds
    return spawn


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description=(
            "Attach to a shared evaluation store, lease queued design "
            "points, evaluate them and publish the results."
        ),
    )
    parser.add_argument(
        "store",
        help="shared store path: a directory (file store/queue) or "
        "*.sqlite/*.db (store + queue in one database)",
    )
    parser.add_argument(
        "--evaluator",
        required=True,
        help="module:factory — a zero-argument callable returning the "
        "point evaluator (or a toolkit exposing evaluate_points_timed)",
    )
    parser.add_argument(
        "--queue",
        default=None,
        help="queue path when it is not co-located with the store",
    )
    parser.add_argument("--worker-id", default=None)
    parser.add_argument(
        "--batch", type=int, default=2, help="jobs per lease (default 2)"
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=60.0,
        help="lease TTL (default 60; must exceed one batch's eval time)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2, dest="poll_interval",
        help="idle sleep between empty lease attempts (default 0.2s)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None,
        help="stop after this many jobs",
    )
    parser.add_argument(
        "--drain", action="store_true",
        help="exit once the queue holds no pending or leased work",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this long without work (with --drain: how "
        "long to wait for work to appear)",
    )
    parser.add_argument(
        "--throttle", type=float, default=0.0,
        help="sleep before evaluating each leased batch (testing aid)",
    )
    parser.add_argument(
        "--supervise", type=int, default=None, metavar="N",
        help="run N worker children under a restarting supervisor "
        "instead of working in this process",
    )
    parser.add_argument(
        "--warm", action="store_true",
        help="with --supervise: build the evaluator and preload "
        "persisted charging maps once in the parent, then fork warm "
        "children (millisecond spin-up instead of seconds; needs "
        "os.fork, silently cold elsewhere)",
    )
    parser.add_argument(
        "--no-map-store", action="store_true",
        help="do not persist/load envelope charging maps through the "
        "shared store",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=5,
        help="with --supervise: respawns tolerated per window before "
        "declaring a crash loop (default 5)",
    )
    parser.add_argument(
        "--restart-window", type=float, default=60.0,
        help="with --supervise: sliding crash-counting window in "
        "seconds (default 60)",
    )
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="append structured observability events to this JSONL "
        "file (default: $REPRO_EVENT_LOG when set)",
    )
    parser.add_argument(
        "--report-dir", default=None, metavar="DIR",
        help="write each worker's final report as JSON into this "
        "directory; --supervise --json uses it to aggregate per-child "
        "metrics (defaulting to a temporary directory)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    return parser


def _collect_child_reports(report_dir: str | None) -> list[dict]:
    """Final reports the children dropped in ``report_dir``, oldest
    first.  Unreadable files are skipped — a child killed mid-write
    must not take down the supervisor's summary."""
    if not report_dir or not os.path.isdir(report_dir):
        return []
    reports: list[dict] = []
    for name in sorted(os.listdir(report_dir)):
        if not (name.startswith("report-") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(report_dir, name), encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            reports.append(payload)
    return reports


def _fleet_metrics(
    reports: list[dict], restarts: int, uptime_seconds: float
) -> dict:
    """The final metrics snapshot ``--supervise --json`` embeds:
    per-child totals plus fleet-level sums, restarts and uptime."""
    totals = {key: 0 for key in (
        "jobs_completed", "jobs_failed", "jobs_skipped", "leases"
    )}
    workers = {}
    for payload in reports:
        for key in totals:
            value = payload.get(key)
            if isinstance(value, (int, float)):
                totals[key] += int(value)
        worker_id = payload.get("worker_id") or f"worker-{len(workers)}"
        workers[worker_id] = {
            key: payload.get(key)
            for key in (
                "jobs_completed", "jobs_failed", "jobs_skipped",
                "leases", "seconds", "eval_seconds",
            )
        }
    return {
        **totals,
        "restarts": restarts,
        "uptime_seconds": uptime_seconds,
        "workers": workers,
    }


def _run_supervised(args, argv: Sequence[str] | None) -> int:
    """``--supervise N``: spawn and shepherd N child workers."""
    if args.json and args.report_dir is None:
        # The summary aggregates per-child reports, so the children
        # need somewhere to drop them even if the caller didn't ask.
        args.report_dir = tempfile.mkdtemp(prefix="repro-worker-reports-")
    started_at = time.perf_counter()
    if args.warm and hasattr(os, "fork"):
        try:
            spawn = _warm_spawn_factory(args)
        except EvaluatorConfigError as error:
            print(
                f"{PROG}: "
                + json.dumps(
                    {
                        "error": "evaluator-config",
                        "spec": args.evaluator,
                        "reason": str(error),
                    },
                    sort_keys=True,
                ),
                file=sys.stderr,
            )
            return EXIT_EVALUATOR_CONFIG
        except ReproError as error:
            print(f"{PROG}: {error}", file=sys.stderr)
            return 1
    else:
        child_argv = _child_argv(
            list(argv) if argv is not None else sys.argv[1:]
        )
        if args.report_dir is not None:
            child_argv += ["--report-dir", args.report_dir]

        def spawn(index: int):
            return subprocess.Popen(
                [sys.executable, "-m", "repro.exec.worker", *child_argv]
            )

    def on_event(event: dict) -> None:
        if not args.json:
            print(
                f"{PROG}[supervisor]: "
                + " ".join(f"{k}={v}" for k, v in event.items()),
                file=sys.stderr,
            )

    supervisor = Supervisor(
        spawn,
        args.supervise,
        max_restarts=args.max_restarts,
        window=args.restart_window,
        on_event=on_event,
    )
    report = supervisor.run()
    if report.exit_code != 0:
        print(f"{PROG}: supervisor gave up: {report.reason}", file=sys.stderr)
    if args.json:
        payload = report.as_dict()
        payload["metrics"] = _fleet_metrics(
            _collect_child_reports(args.report_dir),
            restarts=report.restarts,
            uptime_seconds=time.perf_counter() - started_at,
        )
        if getattr(spawn, "spawn_seconds", None) is not None:
            # Warm mode: the one-time parent cost (evaluator build +
            # map preload) and the marginal per-child fork latency —
            # the number the warm-fleet startup claim is gated on.
            payload["warm"] = {
                "prepare_seconds": spawn.prepare_seconds,
                "spawn_seconds": list(spawn.spawn_seconds),
            }
        print(json.dumps(payload, sort_keys=True))
    return report.exit_code


def _run_single(
    args, evaluate: Evaluator, batch_evaluate: Callable | None
) -> int:
    """One worker process: resolve substrate, loop, report.

    Shared by the plain single-worker path and warm-mode forked
    children — which is why the store and queue are resolved *here*
    (each process needs its own connections; a fork must not inherit
    the parent's SQLite handle).
    """
    if getattr(args, "events", None):
        set_event_log(args.events)
    try:
        store = resolve_store(args.store)
        queue = (
            resolve_queue(args.queue)
            if args.queue is not None
            else resolve_queue(args.store)
        )
    except ReproError as error:
        print(f"{PROG}: {error}", file=sys.stderr)
        return 1
    if not args.no_map_store:
        attach_map_store(store)
    try:
        worker = Worker(
            store,
            queue,
            evaluate,
            batch_evaluate=batch_evaluate,
            worker_id=args.worker_id,
            batch=args.batch,
            lease_seconds=args.lease_seconds,
            poll_interval=args.poll_interval,
            max_jobs=args.max_jobs,
            drain=args.drain,
            idle_timeout=args.idle_timeout,
            throttle=args.throttle,
        )
        report = worker.run()
        if getattr(args, "report_dir", None):
            os.makedirs(args.report_dir, exist_ok=True)
            atomic_write_json(
                os.path.join(
                    args.report_dir, f"report-{report.worker_id}.json"
                ),
                {**report.as_dict(), "pid": os.getpid()},
            )
        if args.json:
            print(json.dumps(report.as_dict(), sort_keys=True))
        else:
            print(
                f"{PROG}: {report.worker_id} completed "
                f"{report.jobs_completed} jobs "
                f"({report.jobs_failed} failed) in {report.seconds:.1f}s"
            )
        return 0
    except ReproError as error:
        print(f"{PROG}: {error}", file=sys.stderr)
        return 1
    finally:
        if not args.no_map_store:
            detach_map_store()
        queue.close()
        store.close()


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.supervise is not None:
        return _run_supervised(args, argv)
    try:
        evaluate, batch_evaluate = load_evaluator(args.evaluator)
    except EvaluatorConfigError as error:
        # One structured line, a distinct exit code: supervisors and
        # operators can tell "fix the spec" from "it crashed".
        print(
            f"{PROG}: "
            + json.dumps(
                {
                    "error": "evaluator-config",
                    "spec": args.evaluator,
                    "reason": str(error),
                },
                sort_keys=True,
            ),
            file=sys.stderr,
        )
        return EXIT_EVALUATOR_CONFIG
    return _run_single(args, evaluate, batch_evaluate)


if __name__ == "__main__":
    sys.exit(main())
