"""``repro-worker`` — drain a shared work queue, publish to the store.

A worker is the consumer half of the distributed substrate: it points
at the same path a :class:`~repro.exec.queue.DistributedBackend`
submitter uses, leases batches of design points, evaluates them with
a locally constructed evaluator, persists the responses into the
shared :class:`~repro.exec.store.CacheStore` under the submitter's
fingerprints, and marks the jobs done.  Run as many as you like, on
as many hosts as share the path::

    python -m repro.exec.worker /mnt/share/evals.sqlite \
        --evaluator mypkg.study:make_evaluator --drain --idle-timeout 60

(Installed as the ``repro-worker`` console script.)  ``--evaluator``
names a **zero-argument factory** (``module:callable``) built in the
worker process; it may return either a plain point evaluator
(``dict -> dict`` of responses) or a toolkit-like object exposing
``evaluate_points_timed`` (e.g. a
:class:`~repro.core.toolkit.SensorNodeDesignToolkit` configured like
the submitter's), in which case leased batches ride the amortized
serial path.  The factory must build the *same* evaluation the
submitter fingerprinted — a mismatched worker publishes wrong
responses under the right key, which no queue can detect.

Failure semantics: an evaluator exception fails the leased jobs back
to pending (terminally ``failed`` after the queue's ``max_attempts``);
a killed worker simply stops heartbeating and its leases are
reclaimed by any survivor.  Every publish is an atomic store write of
a deterministic payload, so crash-duplicated work is harmless.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.exec.backends import Evaluator, SerialBackend
from repro.exec.queue import (
    WorkQueue,
    default_worker_id,
    resolve_queue,
)
from repro.exec.store import CacheStore, resolve_store

PROG = "repro-worker"


def load_evaluator(
    spec: str,
) -> tuple[Evaluator, Callable | None]:
    """Build ``(evaluate, batch_evaluate)`` from a factory spec.

    ``spec`` is ``module:attribute`` naming a zero-argument callable;
    its return value is either the evaluator itself or an object with
    ``evaluate_point``/``evaluate_points_timed`` (the toolkit shape).
    """
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ReproError(
            f"evaluator spec {spec!r} is not of the form module:factory"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise ReproError(
            f"cannot import evaluator module {module_name!r}: {error}"
        ) from error
    try:
        factory = getattr(module, attr)
    except AttributeError as error:
        raise ReproError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from error
    if not callable(factory):
        raise ReproError(f"{spec!r} is not callable")
    built = factory()
    batch = getattr(built, "evaluate_points_timed", None)
    if batch is not None:
        evaluate = getattr(built, "evaluate_point", None)
        if evaluate is None:  # pragma: no cover - defensive
            raise ReproError(
                f"{spec!r} returned an object with evaluate_points_timed "
                "but no evaluate_point"
            )
        return evaluate, batch
    if not callable(built):
        raise ReproError(
            f"{spec!r} must return an evaluator callable or a toolkit-"
            f"like object, got {type(built)!r}"
        )
    return built, None


@dataclass
class WorkerReport:
    """What one worker run did."""

    worker_id: str
    jobs_completed: int = 0
    jobs_failed: int = 0
    leases: int = 0
    seconds: float = 0.0
    eval_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "leases": self.leases,
            "seconds": self.seconds,
            "eval_seconds": self.eval_seconds,
        }


class Worker:
    """The lease → evaluate → publish → complete loop.

    Args:
        store: where results are published (shared with submitters).
        queue: where work is leased from.
        evaluate: point evaluator.
        batch_evaluate: optional amortized batch evaluator (the
            leased batch then rides the batched serial path).
        worker_id: lease identity (default host/pid-unique).
        batch: jobs per lease — small batches spread work across
            workers and bound what a kill can delay.
        lease_seconds: lease TTL; must comfortably exceed the time
            one batch takes to evaluate — jobs are completed at batch
            end and there is no mid-batch heartbeat (long-running
            custom workers can call ``queue.heartbeat`` themselves).
        poll_interval: idle sleep between empty lease attempts.
        max_jobs: stop after this many jobs (None: unbounded).
        drain: exit once the queue holds no runnable or leased work.
        idle_timeout: with ``drain``, wait this long for work to
            appear before giving up (None: exit immediately when the
            queue is empty); without ``drain``, exit after this much
            continuous idleness.
        throttle: sleep this long before evaluating each leased batch
            (a chaos/testing aid: makes lease-reclamation windows
            reproducible).
    """

    def __init__(
        self,
        store: CacheStore,
        queue: WorkQueue,
        evaluate: Evaluator,
        *,
        batch_evaluate: Callable | None = None,
        worker_id: str | None = None,
        batch: int = 2,
        lease_seconds: float = 60.0,
        poll_interval: float = 0.2,
        max_jobs: int | None = None,
        drain: bool = False,
        idle_timeout: float | None = None,
        throttle: float = 0.0,
    ):
        if batch < 1:
            raise ReproError(f"batch must be >= 1, got {batch}")
        self.store = store
        self.queue = queue
        self.worker_id = worker_id or default_worker_id()
        self.batch = batch
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.max_jobs = max_jobs
        self.drain = drain
        self.idle_timeout = idle_timeout
        self.throttle = float(throttle)
        self._backend = SerialBackend(batch_evaluate=batch_evaluate)
        self._evaluate = evaluate

    def run(self) -> WorkerReport:
        """Work until drained / idle / at the job bound."""
        report = WorkerReport(worker_id=self.worker_id)
        started = time.perf_counter()
        idle_since: float | None = None
        seen_work = False
        while True:
            if (
                self.max_jobs is not None
                and report.jobs_completed + report.jobs_failed
                >= self.max_jobs
            ):
                break
            jobs = self.queue.lease(
                self.worker_id,
                n=self.batch,
                lease_seconds=self.lease_seconds,
            )
            if not jobs:
                stats = self.queue.stats()
                if self.drain and stats.outstanding == 0:
                    # Drained — but a worker started *before* the
                    # submitter must not mistake a not-yet-fed queue
                    # for a finished one: with an idle timeout it
                    # keeps waiting for work to appear.  Finished
                    # rows from *earlier* studies on a long-lived
                    # substrate don't count as this run's work, so
                    # only leases this worker actually took (or the
                    # absence of an idle timeout) end the wait.
                    if seen_work or self.idle_timeout is None:
                        break
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if (
                    self.idle_timeout is not None
                    and now - idle_since >= self.idle_timeout
                ):
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            seen_work = True
            report.leases += 1
            if self.throttle > 0.0:
                time.sleep(self.throttle)
            self._work(jobs, report)
        report.seconds = time.perf_counter() - started
        return report

    def _work(self, jobs: Sequence, report: WorkerReport) -> None:
        points = [job.point for job in jobs]
        try:
            results = self._backend.run(self._evaluate, points)
        except Exception as error:
            if len(jobs) > 1:
                # A poison point must not take its batch-mates down
                # with it (batched, they would re-pair on every lease
                # until all of them failed terminally): retry one job
                # at a time so only the points that actually raise
                # are failed.
                for job in jobs:
                    self._work([job], report)
                return
            self.queue.fail(
                self.worker_id, jobs[0].job_id, error=str(error)
            )
            report.jobs_failed += 1
            return
        for job, (responses, seconds) in zip(jobs, results):
            self.store.persist(job.job_id, responses)
            self.queue.complete(
                self.worker_id, job.job_id, seconds=seconds
            )
            report.jobs_completed += 1
            report.eval_seconds += seconds


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description=(
            "Attach to a shared evaluation store, lease queued design "
            "points, evaluate them and publish the results."
        ),
    )
    parser.add_argument(
        "store",
        help="shared store path: a directory (file store/queue) or "
        "*.sqlite/*.db (store + queue in one database)",
    )
    parser.add_argument(
        "--evaluator",
        required=True,
        help="module:factory — a zero-argument callable returning the "
        "point evaluator (or a toolkit exposing evaluate_points_timed)",
    )
    parser.add_argument(
        "--queue",
        default=None,
        help="queue path when it is not co-located with the store",
    )
    parser.add_argument("--worker-id", default=None)
    parser.add_argument(
        "--batch", type=int, default=2, help="jobs per lease (default 2)"
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=60.0,
        help="lease TTL (default 60; must exceed one batch's eval time)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2, dest="poll_interval",
        help="idle sleep between empty lease attempts (default 0.2s)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None,
        help="stop after this many jobs",
    )
    parser.add_argument(
        "--drain", action="store_true",
        help="exit once the queue holds no pending or leased work",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this long without work (with --drain: how "
        "long to wait for work to appear)",
    )
    parser.add_argument(
        "--throttle", type=float, default=0.0,
        help="sleep before evaluating each leased batch (testing aid)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        evaluate, batch_evaluate = load_evaluator(args.evaluator)
        store = resolve_store(args.store)
        queue = (
            resolve_queue(args.queue)
            if args.queue is not None
            else resolve_queue(args.store)
        )
    except ReproError as error:
        print(f"{PROG}: {error}", file=sys.stderr)
        return 1
    try:
        worker = Worker(
            store,
            queue,
            evaluate,
            batch_evaluate=batch_evaluate,
            worker_id=args.worker_id,
            batch=args.batch,
            lease_seconds=args.lease_seconds,
            poll_interval=args.poll_interval,
            max_jobs=args.max_jobs,
            drain=args.drain,
            idle_timeout=args.idle_timeout,
            throttle=args.throttle,
        )
        report = worker.run()
        if args.json:
            print(json.dumps(report.as_dict(), sort_keys=True))
        else:
            print(
                f"{PROG}: {report.worker_id} completed "
                f"{report.jobs_completed} jobs "
                f"({report.jobs_failed} failed) in {report.seconds:.1f}s"
            )
        return 0
    except ReproError as error:
        print(f"{PROG}: {error}", file=sys.stderr)
        return 1
    finally:
        queue.close()
        store.close()


if __name__ == "__main__":
    sys.exit(main())
