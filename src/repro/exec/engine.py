"""The evaluation engine: backend + cache behind one ``map_points``.

:class:`EvaluationEngine` is what :class:`~repro.core.explorer.DesignExplorer`
and :class:`~repro.core.toolkit.SensorNodeDesignToolkit` actually call.
For a batch of physical design points it:

1. fingerprints every point against the evaluation context,
2. answers what it can from the content-addressed cache,
3. deduplicates the remaining points *within the batch* (a CCD's
   centre replicates collapse to one simulation),
4. dispatches the unique misses to the configured backend, and
5. reassembles results in input order and feeds the cache.

Determinism: evaluators in this codebase are pure functions of the
point (simulations are seeded/closed-form), so serving replicates and
cache hits from one evaluation is exact, not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ReproError
from repro.exec.backends import (
    BatchEvaluator,
    EvaluationBackend,
    Evaluator,
    resolve_backend,
)
from repro.exec.cache import EvalCache, point_fingerprint
from repro.exec.lifecycle import GCBudget
from repro.exec.store import CacheStore
from repro.obs.catalog import flush_metrics, track_engine
from repro.obs.tracing import span
from repro.sim.envelope import charging_cache_stats

#: Engine counters that participate in snapshot/delta accounting.
_ENGINE_COUNTERS = ("points_evaluated", "batches_dispatched", "replicate_hits")

#: Counters read off the backend when it exposes them (the
#: distributed backend's graceful-degradation and substrate-traffic
#: accounting).
_BACKEND_COUNTERS = (
    "degraded_evaluations",
    "queue_transactions",
    "poll_sleeps",
)

#: Cache counters that participate in snapshot/delta accounting.
_CACHE_COUNTERS = (
    "hits",
    "misses",
    "evictions",
    "loads",
    "persists",
    "invalidations",
    "gc_evictions",
    "bytes_reclaimed",
    "compactions",
)

#: Charging-map cache counters that participate in snapshot/delta
#: accounting (``size`` stays absolute — it is a size, not a counter).
_MAP_COUNTERS = (
    "hits",
    "misses",
    "built",
    "loaded",
    "published",
    "evictions",
)


@dataclass
class PointEvaluation:
    """One evaluated design point.

    Attributes:
        responses: response name -> value.
        seconds: wall time spent evaluating *this call* (0.0 for
            cache hits and within-batch replicates).
        cached: served from the evaluation cache.
        fingerprint: content hash of (point, context).
    """

    responses: dict[str, float]
    seconds: float
    cached: bool
    fingerprint: str


class EvaluationEngine:
    """Pluggable, memoizing executor for design-point batches.

    Args:
        evaluate: the black-box point evaluator.
        backend: "serial", "process", "thread", "distributed" (needs
            a persistent cache store — results then travel through it
            and any number of ``repro-worker`` processes share the
            work), or a ready backend instance.
        cache: True for an unbounded in-memory :class:`EvalCache`,
            False/None to disable memoization, a ready cache instance
            (sharable across engines), or a
            :class:`~repro.exec.store.CacheStore` to wrap — a
            persistent store makes evaluations reusable across
            processes and hosts.
        context: structure folded into every fingerprint; anything
            that changes evaluator behaviour (mission length, engine
            options, system overrides) belongs here.  A callable is
            re-invoked per batch, so owners whose configuration is
            mutable can hand a live snapshot function instead of a
            stale init-time value.
        workers / chunk_size: forwarded to the process backend.
        batch_evaluate: amortized batch variant used by the serial
            backend when given.
        cache_gc: optional auto-GC budget — a
            :class:`~repro.exec.lifecycle.GCBudget` or a mapping of
            its fields.  After every batch that persisted entries the
            cache's store is collected back under the budget, so a
            bounded deployment never needs manual pruning.  Requires
            an enabled cache.
        resilient: wrap a store-backed cache in a
            :class:`~repro.exec.resilience.ResilientStore` so a
            failing store degrades to a warn-once memory-only cache
            mid-study (results kept, persistence deferred until the
            store recovers) instead of aborting the study.  Only
            meaningful when ``cache`` is a bare
            :class:`~repro.exec.store.CacheStore`; a memory cache has
            nothing to degrade to and a ready :class:`EvalCache` is
            caller-assembled (wrap its store yourself).
        backend_options: extra keyword options forwarded to the
            backend constructor when ``backend`` is a name — e.g.
            ``{"fallback_after": 30.0}`` to let a distributed study
            finish in-process when its worker fleet dies.
    """

    def __init__(
        self,
        evaluate: Evaluator,
        backend: str | EvaluationBackend = "serial",
        *,
        cache: bool | EvalCache | CacheStore | None = True,
        context: object = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        batch_evaluate: BatchEvaluator | None = None,
        cache_gc: GCBudget | Mapping | None = None,
        resilient: bool = False,
        backend_options: Mapping | None = None,
    ):
        self.evaluate = evaluate
        if resilient and isinstance(cache, CacheStore):
            from repro.exec.resilience import ResilientStore

            if not isinstance(cache, ResilientStore):
                cache = ResilientStore(cache)
        # Ownership follows construction: the engine closes what it
        # wrapped itself (cache=True, or a bare store handed over),
        # while a ready EvalCache stays caller-owned so a shared
        # (possibly persistent) store survives this engine's close().
        self._owns_cache = cache is True or isinstance(cache, CacheStore)
        if cache is True:
            self.cache: EvalCache | None = EvalCache()
        elif cache is False or cache is None:
            self.cache = None
        elif isinstance(cache, EvalCache):
            self.cache = cache
        elif isinstance(cache, CacheStore):
            self.cache = EvalCache(store=cache)
        else:
            raise ReproError(
                "cache must be bool, None, EvalCache or CacheStore, "
                f"got {type(cache)!r}"
            )
        # Resolved after the cache so backend="distributed" can share
        # its store: workers then publish results under exactly the
        # fingerprints this engine's cache looks up.
        self.backend = resolve_backend(
            backend,
            workers=workers,
            chunk_size=chunk_size,
            batch_evaluate=batch_evaluate,
            store=self.cache.store if self.cache is not None else None,
            **dict(backend_options or {}),
        )
        self.cache_gc = GCBudget.of(cache_gc)
        if self.cache_gc is not None and self.cache is None:
            raise ReproError(
                "cache_gc needs an enabled cache; drop cache=False "
                "or the budget"
            )
        self.context = context
        self.points_evaluated = 0
        self.batches_dispatched = 0
        self.replicate_hits = 0
        # Simulated seconds actually spent in the backend; feeds the
        # cost-accounting gauges (seconds saved by cache hits are
        # estimated against the observed mean evaluation cost).  Kept
        # out of stats()/stats_snapshot() for output compatibility.
        self.eval_seconds = 0.0
        track_engine(self)

    def _context_value(self) -> object:
        return self.context() if callable(self.context) else self.context

    # -- the one entry point ---------------------------------------------------

    def map_points(
        self, points: Sequence[Mapping[str, float]]
    ) -> list[PointEvaluation]:
        """Evaluate a batch of physical points, in order."""
        n = len(points)
        context = self._context_value()
        fingerprints = [
            point_fingerprint(point, context) for point in points
        ]
        results: list[PointEvaluation | None] = [None] * n

        if self.cache is None:
            # No memoization: every point runs, replicates included,
            # which reproduces the legacy evaluation behaviour exactly.
            self.batches_dispatched += 1
            with span("evaluate", batch=n):
                evaluated = self.backend.run(
                    self.evaluate, points, fingerprints=fingerprints
                )
            if len(evaluated) != n:
                raise ReproError(
                    f"backend returned {len(evaluated)} results for "
                    f"{n} points"
                )
            self.points_evaluated += n
            self.eval_seconds += sum(s for _, s in evaluated)
            return [
                PointEvaluation(
                    responses=dict(responses),
                    seconds=seconds,
                    cached=False,
                    fingerprint=fp,
                )
                for fp, (responses, seconds) in zip(fingerprints, evaluated)
            ]

        # Cache pass: collapse within-batch replicates first (so the
        # hit/miss stats only count unique points), then answer every
        # unique fingerprint from one batched store read.
        slots_for: dict[str, list[int]] = {}
        point_for: dict[str, Mapping[str, float]] = {}
        for i, (point, fp) in enumerate(zip(points, fingerprints)):
            slots = slots_for.get(fp)
            if slots is None:
                slots_for[fp] = [i]
                point_for[fp] = point
            else:
                slots.append(i)
                self.replicate_hits += 1
        found = self.cache.get_many(list(slots_for))
        pending: dict[str, list[int]] = {}
        pending_points: list[Mapping[str, float]] = []
        for fp, slots in slots_for.items():
            hit = found.get(fp)
            if hit is None:
                pending[fp] = slots
                pending_points.append(point_for[fp])
                continue
            for i in slots:
                results[i] = PointEvaluation(
                    responses=dict(hit),
                    seconds=0.0,
                    cached=True,
                    fingerprint=fp,
                )

        # Backend pass over the unique misses.
        if pending_points:
            self.batches_dispatched += 1
            with span("evaluate", batch=len(pending_points)):
                evaluated = self.backend.run(
                    self.evaluate, pending_points, fingerprints=list(pending)
                )
            if len(evaluated) != len(pending_points):
                raise ReproError(
                    f"backend returned {len(evaluated)} results for "
                    f"{len(pending_points)} points"
                )
            self.points_evaluated += len(evaluated)
            self.eval_seconds += sum(s for _, s in evaluated)
            # A backend that already published every result into this
            # cache's own store (the distributed backend routes them
            # through it) would make cache.put a second, byte-identical
            # write per point — skip the redundant persist.
            persist = not (
                getattr(self.backend, "publishes_results", False)
                and getattr(self.backend, "store", None)
                is self.cache.store
            )
            to_persist: list[tuple[str, Mapping[str, float]]] = []
            for (fp, slots), (responses, seconds) in zip(
                pending.items(), evaluated
            ):
                if persist:
                    to_persist.append((fp, responses))
                for j, i in enumerate(slots):
                    results[i] = PointEvaluation(
                        responses=dict(responses),
                        seconds=seconds if j == 0 else 0.0,
                        cached=j > 0,
                        fingerprint=fp,
                    )
            if to_persist:
                # The whole completed batch lands in one store call.
                with span("persist", batch=len(to_persist)):
                    self.cache.put_many(to_persist)
            self._auto_collect()
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - defensive
            raise ReproError(f"points never evaluated: {missing}")
        return results  # type: ignore[return-value]

    def __call__(self, point: Mapping[str, float]) -> dict[str, float]:
        """Single-point convenience (same caching path)."""
        return self.map_points([point])[0].responses

    def prefetch(self, points: Sequence[Mapping[str, float]]) -> int:
        """Hint that these points will be mapped soon.

        Fingerprints are computed against the current context exactly
        as :meth:`map_points` would, then handed to the backend's
        ``prefetch``: a distributed backend enqueues the store-misses
        so idle workers start early, every other backend ignores the
        hint.  Returns how many evaluations were actually started.
        """
        if not points:
            return 0
        context = self._context_value()
        fingerprints = [
            point_fingerprint(point, context) for point in points
        ]
        return self.backend.prefetch(
            self.evaluate, points, fingerprints=fingerprints
        )

    def prime(self, point: Mapping[str, float]) -> dict[str, float]:
        """Evaluate one point *in the calling process*, bypassing the backend.

        This is the prewarm path: a process backend would run the point
        in a forked worker, whose freshly-built global caches (the
        envelope charging-map grids) die with the pool.  Evaluating
        in-parent builds them where every future worker will inherit
        them.  The point runs even when the evaluation cache already
        knows its responses — the side effect (warm process-global
        grids) is the purpose, and a shared or persisted cache would
        otherwise silently skip the warm-up.  The result still lands
        in the evaluation cache.
        """
        fp = point_fingerprint(point, self._context_value())
        responses = dict(self.evaluate(point))
        self.points_evaluated += 1
        if self.cache is not None:
            self.cache.put(fp, responses)
            self._auto_collect()
        return responses

    def _auto_collect(self) -> None:
        """Enforce the auto-GC budget after a batch of persists.

        One metadata scan per *dispatched batch* (not per point), so
        the cost is amortized the same way system construction is;
        an unbounded budget or no budget is free.
        """
        if self.cache_gc is not None and self.cache_gc.bounded:
            self.cache.collect(self.cache_gc)

    # -- bookkeeping -----------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Freeze the counters, for later per-interval deltas.

        Engines are long-lived (one per toolkit), so raw counters are
        lifetime totals; callers that want *this study's* traffic take
        a snapshot first and pass it to :meth:`stats` as ``since``.
        """
        snap: dict = {key: getattr(self, key) for key in _ENGINE_COUNTERS}
        for key in _BACKEND_COUNTERS:
            snap[key] = getattr(self.backend, key, 0)
        snap["store_round_trips"] = self._store_round_trips()
        snap["cache"] = (
            self.cache.stats.as_dict() if self.cache is not None else None
        )
        snap["charging_maps"] = charging_cache_stats()
        return snap

    def _store_round_trips(self) -> int:
        """Lifetime store round trips under this engine's cache."""
        if self.cache is None:
            return 0
        return int(getattr(self.cache.store.stats, "round_trips", 0))

    def stats(self, since: Mapping | None = None) -> dict:
        """Backend and cache statistics for reports/benchmarks.

        Args:
            since: a :meth:`stats_snapshot`; when given, every counter
                (engine and cache) is reported as the delta since that
                snapshot, with the hit rate recomputed over the
                interval.  ``cache_entries`` stays absolute — it is a
                size, not a counter.
        """
        out = dict(self.backend.describe())
        out.update(
            points_evaluated=self.points_evaluated,
            batches_dispatched=self.batches_dispatched,
            replicate_hits=self.replicate_hits,
        )
        for key in _BACKEND_COUNTERS:
            out[key] = getattr(self.backend, key, 0)
        out["store_round_trips"] = self._store_round_trips()
        if self.cache is not None:
            out["cache"] = self.cache.stats.as_dict()
            out["cache_entries"] = len(self.cache)
            out["store"] = self.cache.describe()
        else:
            out["cache"] = None
        out["charging_maps"] = charging_cache_stats()
        if since is not None:
            for key in _ENGINE_COUNTERS:
                out[key] -= since.get(key, 0)
            for key in _BACKEND_COUNTERS:
                out[key] -= since.get(key, 0)
            out["store_round_trips"] -= since.get("store_round_trips", 0)
            baseline = since.get("cache")
            if out["cache"] is not None and baseline is not None:
                for key in _CACHE_COUNTERS:
                    out["cache"][key] -= baseline.get(key, 0)
                lookups = out["cache"]["hits"] + out["cache"]["misses"]
                out["cache"]["hit_rate"] = (
                    out["cache"]["hits"] / lookups if lookups else 0.0
                )
            map_baseline = since.get("charging_maps")
            if map_baseline is not None:
                for key in _MAP_COUNTERS:
                    out["charging_maps"][key] -= map_baseline.get(key, 0)
        return out

    def close(self) -> None:
        # Final counter flush so cross-process observers (the event
        # log is the transport) see this engine's totals even after
        # the process exits; a no-op when no event log is configured.
        flush_metrics("engine")
        self.backend.close()
        if self._owns_cache and self.cache is not None:
            self.cache.close()
