"""Shared SQLite connection discipline for the durable substrate.

The store (``evaluations``), the work queue (``queue_jobs``) and the
campaign journal (``campaigns`` / ``campaign_rounds``) all keep their
tables in WAL-mode SQLite databases — often the *same* database file —
and are hammered concurrently by submitters, workers and operators.
Three copies of the connection setup drifted here before this module
existed; a missed pragma in one of them is exactly the kind of bug
that only surfaces as a mystery "database is locked" under load.

:func:`connect_wal` is therefore the single place a
``sqlite3.connect`` call is allowed to live (``repro-lint``'s REP104
rule statically rejects connects anywhere else).  It applies the
discipline every substrate connection needs:

* ``timeout=`` — the driver-level busy handler, so lock contention
  blocks instead of failing instantly;
* ``PRAGMA busy_timeout`` — the same horizon expressed at the SQLite
  level, explicit and adjustable later (the store temporarily caps it
  for best-effort usage bumps);
* ``PRAGMA journal_mode=WAL`` — readers never block the writer;
* ``PRAGMA synchronous=NORMAL`` — WAL-safe durability at sane speed.

Callers create their own tables: table shape is the caller's contract,
connection discipline is this module's.
"""

from __future__ import annotations

import os
import sqlite3


def connect_wal(
    path: str | os.PathLike,
    *,
    timeout: float = 30.0,
    autocommit: bool = False,
) -> sqlite3.Connection:
    """Open ``path`` with the substrate's uniform pragma discipline.

    Args:
        path: database file (parent directory must already exist).
        timeout: busy horizon in seconds, applied both as the driver
            ``timeout=`` and as ``PRAGMA busy_timeout``.
        autocommit: when True, ``isolation_level`` is cleared so the
            caller drives explicit ``BEGIN IMMEDIATE`` transactions
            (the queue's lease claim and the journal's round commit
            need this; sqlite3's implicit transactions would fight
            them).

    Raises:
        sqlite3.DatabaseError: the file exists but is not a database
            (or is corrupt); the half-open connection is closed before
            the error propagates, so callers can rebuild or refuse
            without leaking handles.
    """
    timeout = float(timeout)
    conn = sqlite3.connect(str(path), timeout=timeout)
    if autocommit:
        conn.isolation_level = None
    try:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
    except sqlite3.DatabaseError:
        conn.close()
        raise
    return conn
