"""Evaluation backends: how a batch of design points gets executed.

A backend turns ``(evaluate, points)`` into one timed result per point,
in the order given — result ordering is part of the contract, so a
design's response vectors are bit-identical no matter which backend ran
them.  Two implementations ship:

* :class:`SerialBackend` — today's semantics: one point after another
  in the calling process.  When the evaluator's owner provides a batch
  variant (see :class:`~repro.exec.engine.EvaluationEngine`), the
  serial backend routes through it so per-point construction work is
  amortized.
* :class:`ProcessBackend` — fans points out over a ``multiprocessing``
  pool with chunked dispatch.  On fork platforms the workers inherit
  the parent's warm global caches (notably the envelope charging-map
  grids), so prewarming one point in the parent before a study keeps
  the children from re-measuring grids; on spawn platforms the
  evaluator must be picklable.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from abc import ABC, abstractmethod
from typing import Callable, Mapping, Sequence

from repro.errors import ReproError

#: One evaluated point: (responses, wall seconds spent evaluating it).
PointResult = tuple[dict[str, float], float]

Evaluator = Callable[[Mapping[str, float]], Mapping[str, float]]
BatchEvaluator = Callable[[Sequence[Mapping[str, float]]], list[PointResult]]

# Evaluator handed to fork-started workers via process inheritance
# (avoids pickling closures / bound methods on the hot path).
_WORKER_EVALUATE: Evaluator | None = None


def _init_worker(evaluate: Evaluator | None = None) -> None:
    global _WORKER_EVALUATE
    if evaluate is not None:
        _WORKER_EVALUATE = evaluate


def _call_point(item: tuple[int, Mapping[str, float]]) -> tuple[int, dict, float]:
    index, point = item
    if _WORKER_EVALUATE is None:  # pragma: no cover - defensive
        raise ReproError("worker started without an evaluator")
    started = time.perf_counter()
    responses = dict(_WORKER_EVALUATE(point))
    return index, responses, time.perf_counter() - started


class EvaluationBackend(ABC):
    """Executes a batch of point evaluations."""

    name: str = "abstract"

    @abstractmethod
    def run(
        self, evaluate: Evaluator, points: Sequence[Mapping[str, float]]
    ) -> list[PointResult]:
        """Evaluate every point, returning results in input order."""

    def describe(self) -> dict:
        """Backend parameters for reports and benchmark manifests."""
        return {"backend": self.name}

    def close(self) -> None:
        """Release any held resources (pools); idempotent."""


class SerialBackend(EvaluationBackend):
    """In-process, in-order evaluation (the reference semantics).

    Args:
        batch_evaluate: optional amortized batch evaluator; when given
            it replaces the per-point loop (it must honour the same
            ordering contract and time each point itself).
    """

    name = "serial"

    def __init__(self, batch_evaluate: BatchEvaluator | None = None):
        self.batch_evaluate = batch_evaluate

    def run(
        self, evaluate: Evaluator, points: Sequence[Mapping[str, float]]
    ) -> list[PointResult]:
        if self.batch_evaluate is not None:
            results = self.batch_evaluate(points)
            if len(results) != len(points):
                raise ReproError(
                    f"batch evaluator returned {len(results)} results "
                    f"for {len(points)} points"
                )
            return [(dict(responses), seconds) for responses, seconds in results]
        out: list[PointResult] = []
        for point in points:
            started = time.perf_counter()
            responses = dict(evaluate(point))
            out.append((responses, time.perf_counter() - started))
        return out

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "batched": self.batch_evaluate is not None,
        }


class ProcessBackend(EvaluationBackend):
    """Chunked fan-out over a ``multiprocessing`` pool.

    Args:
        workers: pool size (default: all visible CPUs).
        chunk_size: points per dispatched chunk; None picks
            ``ceil(n / (4 * workers))`` so each worker sees a few
            chunks (dynamic load balancing without per-point IPC).
        start_method: multiprocessing start method; None prefers
            ``"fork"`` where available (evaluators need not pickle and
            workers inherit warm caches) and falls back to the
            platform default.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ):
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ReproError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._context = multiprocessing.get_context(start_method)
        self.start_method = self._context.get_start_method()
        self.last_chunk_size: int | None = None

    def resolve_chunk_size(self, n_points: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_points / (4 * self.workers)))

    def run(
        self, evaluate: Evaluator, points: Sequence[Mapping[str, float]]
    ) -> list[PointResult]:
        if not points:
            return []
        chunk = self.resolve_chunk_size(len(points))
        self.last_chunk_size = chunk
        global _WORKER_EVALUATE
        previous = _WORKER_EVALUATE
        # Fork workers inherit the module global; spawn workers receive
        # it through the (pickled) initializer argument.
        _WORKER_EVALUATE = evaluate
        initargs = () if self.start_method == "fork" else (evaluate,)
        try:
            with self._context.Pool(
                processes=min(self.workers, len(points)),
                initializer=_init_worker,
                initargs=initargs,
            ) as pool:
                indexed = pool.map(
                    _call_point, list(enumerate(points)), chunksize=chunk
                )
        finally:
            _WORKER_EVALUATE = previous
        indexed.sort(key=lambda triple: triple[0])
        return [(responses, seconds) for _, responses, seconds in indexed]

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "last_chunk_size": self.last_chunk_size,
            "start_method": self.start_method,
        }


def resolve_backend(
    spec: str | EvaluationBackend,
    workers: int | None = None,
    chunk_size: int | None = None,
    batch_evaluate: BatchEvaluator | None = None,
) -> EvaluationBackend:
    """Build a backend from a name ("serial" / "process") or pass one through."""
    if isinstance(spec, EvaluationBackend):
        return spec
    if spec == "serial":
        return SerialBackend(batch_evaluate=batch_evaluate)
    if spec == "process":
        return ProcessBackend(workers=workers, chunk_size=chunk_size)
    raise ReproError(
        f"unknown evaluation backend {spec!r}; pick 'serial' or 'process'"
    )
