"""Evaluation backends: how a batch of design points gets executed.

The backend contract is *futures-style*: :meth:`EvaluationBackend.submit`
accepts ``(evaluate, points)`` and returns a :class:`JobHandle` whose
:meth:`~JobHandle.result` yields one timed result per point, in the
order given — result ordering is part of the contract, so a design's
response vectors are bit-identical no matter which backend ran them.
:meth:`EvaluationBackend.run` is the blocking convenience (submit +
result), and :meth:`EvaluationBackend.drain` blocks until every
outstanding handle has resolved.

Four implementations ship:

* :class:`SerialBackend` — the reference semantics: one point after
  another in the calling process.  When the evaluator's owner provides
  a batch variant (see :class:`~repro.exec.engine.EvaluationEngine`),
  the serial backend routes through it so per-point construction work
  is amortized.
* :class:`ProcessBackend` — fans points out over a ``multiprocessing``
  pool with chunked dispatch.  On fork platforms the workers inherit
  the parent's warm global caches (notably the envelope charging-map
  grids), so prewarming one point in the parent before a study keeps
  the children from re-measuring grids; on spawn platforms the
  evaluator must be picklable.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` fan-out whose
  submit is genuinely asynchronous; the in-process reference for the
  submit/drain contract, and the right choice for I/O-bound
  evaluators (network services, subprocess wrappers) where the GIL is
  released while waiting.
* :class:`~repro.exec.queue.DistributedBackend` — enqueues points on a
  durable :class:`~repro.exec.queue.WorkQueue` and assembles results
  from a shared :class:`~repro.exec.store.CacheStore`, so any number
  of ``repro-worker`` processes (or hosts) complete the batch
  cooperatively.  Resolved by name (``"distributed"``) when the engine
  has a persistent store.

Blocking backends (serial/process) adapt to the submit/drain contract
through the :class:`SynchronousBackend` shim: the batch executes
eagerly at submit time and the handle is born resolved, which is
exactly the old call-and-wait behaviour.
"""

from __future__ import annotations

import inspect
import math
import multiprocessing
import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence

from repro.errors import ReproError

#: One evaluated point: (responses, wall seconds spent evaluating it).
PointResult = tuple[dict[str, float], float]

Evaluator = Callable[[Mapping[str, float]], Mapping[str, float]]
BatchEvaluator = Callable[[Sequence[Mapping[str, float]]], list[PointResult]]

# Evaluator handed to fork-started workers via process inheritance
# (avoids pickling closures / bound methods on the hot path).
_WORKER_EVALUATE: Evaluator | None = None


def _init_worker(evaluate: Evaluator | None = None) -> None:
    global _WORKER_EVALUATE
    if evaluate is not None:
        _WORKER_EVALUATE = evaluate


def _call_point(item: tuple[int, Mapping[str, float]]) -> tuple[int, dict, float]:
    index, point = item
    if _WORKER_EVALUATE is None:  # pragma: no cover - defensive
        raise ReproError("worker started without an evaluator")
    started = time.perf_counter()
    responses = dict(_WORKER_EVALUATE(point))
    return index, responses, time.perf_counter() - started


def _timed_point(evaluate: Evaluator, point: Mapping[str, float]) -> PointResult:
    started = time.perf_counter()
    responses = dict(evaluate(point))
    return responses, time.perf_counter() - started


class JobHandle(ABC):
    """One submitted batch of points, resolving to ordered results."""

    @abstractmethod
    def result(self) -> list[PointResult]:
        """Block until every point is evaluated; results in submit
        order.  Idempotent — repeated calls return the same list.
        Evaluator exceptions propagate from here."""

    @abstractmethod
    def done(self) -> bool:
        """Whether :meth:`result` would return without blocking."""

    def collected(self) -> bool:
        """Whether this handle has delivered its outcome to a caller.

        ``done()`` is *not* enough to forget a handle: a batch whose
        evaluator raised is done, but its error has not surfaced
        until someone calls :meth:`result` — dropping it early would
        swallow the exception ``drain`` promises to propagate.
        """
        return False


class CompletedJob(JobHandle):
    """A handle born resolved (synchronous backends)."""

    def __init__(self, results: list[PointResult]):
        self._results = results

    def result(self) -> list[PointResult]:
        return self._results

    def done(self) -> bool:
        return True

    def collected(self) -> bool:
        # Born resolved and structurally unable to carry an error —
        # the submitting call would have raised instead.
        return True


class FutureJob(JobHandle):
    """A handle over per-point ``concurrent.futures`` futures."""

    def __init__(self, futures: Sequence) -> None:
        self._futures = list(futures)
        self._results: list[PointResult] | None = None

    def result(self) -> list[PointResult]:
        if self._results is None:
            self._results = [future.result() for future in self._futures]
        return self._results

    def done(self) -> bool:
        return self._results is not None or all(
            future.done() for future in self._futures
        )

    def collected(self) -> bool:
        return self._results is not None


class EvaluationBackend(ABC):
    """Executes batches of point evaluations (submit/drain contract)."""

    name: str = "abstract"

    def __init__(self) -> None:
        self._outstanding: list[JobHandle] = []

    @abstractmethod
    def _submit(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> JobHandle:
        """Backend-specific submission; return an unresolved handle."""

    def submit(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> JobHandle:
        """Submit a batch for evaluation, returning its handle.

        ``fingerprints`` (optional, aligned with ``points``) are the
        caller's content-addressed identities for the points; backends
        that key shared storage by them (the distributed backend) use
        them verbatim, everything else ignores them.
        """
        if fingerprints is not None and len(fingerprints) != len(points):
            raise ReproError(
                f"{len(fingerprints)} fingerprints for {len(points)} points"
            )
        handle = self._submit(evaluate, points, fingerprints=fingerprints)
        # Forget only handles whose outcome someone has already taken
        # (done-but-uncollected handles may hold an error drain() owes
        # its caller).
        self._outstanding = [
            h for h in self._outstanding if not h.collected()
        ]
        self._outstanding.append(handle)
        return handle

    def run(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> list[PointResult]:
        """Evaluate every point, returning results in input order
        (the blocking convenience: submit + result)."""
        handle = self.submit(evaluate, points, fingerprints=fingerprints)
        try:
            return handle.result()
        finally:
            self._outstanding = [h for h in self._outstanding if h is not handle]

    def prefetch(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> int:
        """Hint that these points will be wanted soon.

        Backends with a shared substrate (the distributed backend)
        enqueue the store-misses so idle workers start on them before
        the real ``submit`` arrives; everything else ignores the hint.
        Returns how many evaluations were actually started (0 here).
        """
        return 0

    def drain(self) -> None:
        """Block until every outstanding handle has resolved.

        Errors propagate from the first failing handle; the remaining
        handles stay tracked so a second drain resolves them too.
        """
        while self._outstanding:
            handle = self._outstanding[0]
            handle.result()
            self._outstanding = [
                h for h in self._outstanding if h is not handle
            ]

    def describe(self) -> dict:
        """Backend parameters for reports and benchmark manifests."""
        return {"backend": self.name}

    def close(self) -> None:
        """Release any held resources (pools, executors); idempotent."""


class SynchronousBackend(EvaluationBackend):
    """Shim adapting blocking batch execution to submit/drain.

    Subclasses implement :meth:`_execute` (the old call-and-wait
    ``run``); submit runs the batch eagerly and hands back a handle
    that is born resolved, so the ordering contract — and the exact
    legacy timing behaviour — is preserved unchanged.
    """

    @abstractmethod
    def _execute(
        self, evaluate: Evaluator, points: Sequence[Mapping[str, float]]
    ) -> list[PointResult]:
        """Evaluate the whole batch, blocking, results in order."""

    def _submit(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> JobHandle:
        return CompletedJob(self._execute(evaluate, points))


class SerialBackend(SynchronousBackend):
    """In-process, in-order evaluation (the reference semantics).

    Args:
        batch_evaluate: optional amortized batch evaluator; when given
            it replaces the per-point loop (it must honour the same
            ordering contract and time each point itself).
        progress: optional zero-argument liveness callback invoked
            while a batch runs — between points, and forwarded to
            ``batch_evaluate`` as its ``progress`` keyword when its
            signature accepts one (distributed workers hang lease
            heartbeats on it, so a batch slower than a lease TTL is
            not silently reclaimed mid-flight).
    """

    name = "serial"

    def __init__(
        self,
        batch_evaluate: BatchEvaluator | None = None,
        progress: Callable[[], None] | None = None,
    ):
        super().__init__()
        self.batch_evaluate = batch_evaluate
        self.progress = progress
        self._batch_takes_progress = False
        if batch_evaluate is not None and progress is not None:
            # Inspect once instead of a TypeError fallback at call
            # time — the fallback would silently re-run a batch whose
            # *evaluation* raised TypeError.
            try:
                parameters = inspect.signature(
                    batch_evaluate
                ).parameters.values()
            except (TypeError, ValueError):
                parameters = ()
            self._batch_takes_progress = any(
                p.name == "progress" or p.kind is p.VAR_KEYWORD
                for p in parameters
            )

    def _execute(
        self, evaluate: Evaluator, points: Sequence[Mapping[str, float]]
    ) -> list[PointResult]:
        if self.batch_evaluate is not None:
            if self._batch_takes_progress:
                results = self.batch_evaluate(points, progress=self.progress)
            else:
                results = self.batch_evaluate(points)
            if len(results) != len(points):
                raise ReproError(
                    f"batch evaluator returned {len(results)} results "
                    f"for {len(points)} points"
                )
            return [(dict(responses), seconds) for responses, seconds in results]
        out = []
        for point in points:
            out.append(_timed_point(evaluate, point))
            if self.progress is not None:
                self.progress()
        return out

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "batched": self.batch_evaluate is not None,
        }


class ProcessBackend(SynchronousBackend):
    """Chunked fan-out over a ``multiprocessing`` pool.

    The pool's lifetime is strictly scoped to one batch: it is joined
    on every exit path (evaluator exceptions included), and the
    module-global evaluator handed to fork workers is restored even
    when pool construction itself fails — so two engines in one
    process can never cross-wire evaluators through a half-torn-down
    run.

    Args:
        workers: pool size (default: all visible CPUs).
        chunk_size: points per dispatched chunk; None picks
            ``ceil(n / (4 * workers))`` so each worker sees a few
            chunks (dynamic load balancing without per-point IPC).
        start_method: multiprocessing start method; None prefers
            ``"fork"`` where available (evaluators need not pickle and
            workers inherit warm caches) and falls back to the
            platform default.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ):
        super().__init__()
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ReproError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._context = multiprocessing.get_context(start_method)
        self.start_method = self._context.get_start_method()
        self.last_chunk_size: int | None = None

    def resolve_chunk_size(self, n_points: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_points / (4 * self.workers)))

    def _execute(
        self, evaluate: Evaluator, points: Sequence[Mapping[str, float]]
    ) -> list[PointResult]:
        if not points:
            return []
        chunk = self.resolve_chunk_size(len(points))
        self.last_chunk_size = chunk
        global _WORKER_EVALUATE
        previous = _WORKER_EVALUATE
        # Fork workers inherit the module global; spawn workers receive
        # it through the (pickled) initializer argument.
        _WORKER_EVALUATE = evaluate
        pool = None
        try:
            initargs = () if self.start_method == "fork" else (evaluate,)
            pool = self._context.Pool(
                processes=min(self.workers, len(points)),
                initializer=_init_worker,
                initargs=initargs,
            )
            indexed = pool.map(
                _call_point, list(enumerate(points)), chunksize=chunk
            )
            pool.close()
        except BaseException:
            if pool is not None:
                pool.terminate()
            raise
        finally:
            # Join on every exit path: an evaluator exception must not
            # leave unjoined workers behind, and the global must be
            # restored even when Pool construction itself raised.
            if pool is not None:
                pool.join()
            _WORKER_EVALUATE = previous
        indexed.sort(key=lambda triple: triple[0])
        return [(responses, seconds) for _, responses, seconds in indexed]

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "last_chunk_size": self.last_chunk_size,
            "start_method": self.start_method,
        }


class ThreadBackend(EvaluationBackend):
    """Per-point fan-out over a ``ThreadPoolExecutor``.

    Submission is genuinely asynchronous — ``submit`` returns while
    the points evaluate on pool threads, and several submitted batches
    make progress concurrently until ``drain``/``result`` collects
    them.  For the CPU-bound mission simulators the GIL serializes the
    work (use the process backend for those); the thread backend is
    for I/O-bound evaluators and as the in-process reference
    implementation of the submit/drain contract.

    Args:
        workers: pool threads (default: all visible CPUs).
    """

    name = "thread"

    def __init__(self, workers: int | None = None):
        super().__init__()
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self._executor: ThreadPoolExecutor | None = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-eval",
            )
        return self._executor

    def _submit(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> JobHandle:
        executor = self._ensure_executor()
        futures = [
            executor.submit(_timed_point, evaluate, point)
            for point in points
        ]
        return FutureJob(futures)

    def describe(self) -> dict:
        return {"backend": self.name, "workers": self.workers}

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def resolve_backend(
    spec: "str | EvaluationBackend",
    workers: int | None = None,
    chunk_size: int | None = None,
    batch_evaluate: BatchEvaluator | None = None,
    store: object = None,
    **distributed_options,
) -> EvaluationBackend:
    """Build a backend from a name or pass a ready one through.

    Names: ``"serial"``, ``"process"``, ``"thread"``, or
    ``"distributed"`` (which needs ``store`` — the persistent
    :class:`~repro.exec.store.CacheStore` workers publish results
    into; the work queue is derived from it, see
    :func:`~repro.exec.queue.queue_for_store`).  Extra keyword
    options (``retry``, ``fallback``, ``fallback_after``,
    ``cooperate``, ``timeout``, ...) pass through to
    :class:`~repro.exec.queue.DistributedBackend`; they are rejected
    for backends that take none.
    """
    if isinstance(spec, EvaluationBackend):
        return spec
    if spec != "distributed" and distributed_options:
        unknown = ", ".join(sorted(distributed_options))
        raise ReproError(
            f"backend {spec!r} takes no such options: {unknown} "
            "(these belong to the distributed backend)"
        )
    if spec == "serial":
        return SerialBackend(batch_evaluate=batch_evaluate)
    if spec == "process":
        return ProcessBackend(workers=workers, chunk_size=chunk_size)
    if spec == "thread":
        return ThreadBackend(workers=workers)
    if spec == "distributed":
        from repro.exec.queue import DistributedBackend

        if store is None:
            raise ReproError(
                "the distributed backend needs a persistent cache store "
                "to publish results through; pass cache_dir=/cache_store= "
                "(or construct DistributedBackend yourself)"
            )
        return DistributedBackend(store=store, **distributed_options)
    raise ReproError(
        f"unknown evaluation backend {spec!r}; pick 'serial', 'process', "
        f"'thread' or 'distributed'"
    )
