"""Deterministic fault injection for the store/queue substrate.

Resilience claims are worthless until something actually goes wrong,
and production faults refuse to show up on schedule.  This module
makes them show up on schedule: a :class:`FaultPlan` is a *seeded,
deterministic* list of faults ("the 3rd store persist raises
``database is locked``", "the 2nd queue lease is born expired"), and
:class:`FaultyStore` / :class:`FaultyQueue` are transparent wrappers
that execute the plan against a real store/queue while delegating
everything else untouched.

Two properties make the harness trustworthy:

* **Transparency** — with an empty plan the wrappers are behaviourally
  invisible, pinned by re-running the full store/queue contract suites
  through them (``tests/test_faults_contract.py``).
* **Determinism** — the schedule is a pure function of the plan's
  specs, and :meth:`FaultPlan.aggressive` derives its specs from a
  seed alone, so a chaos run can be replayed fault-for-fault.  The
  plan records everything it fires in :attr:`FaultPlan.fired` so a
  test can assert the chaos actually happened.

Fault kinds (:data:`FAULT_KINDS`):

``transient``
    Raise :class:`~repro.errors.TransientStoreError` /
    :class:`~repro.errors.TransientQueueError` — the substrate's own
    retryable taxonomy.
``locked``
    Raise ``sqlite3.OperationalError("database is locked")`` — the
    classic busy-SQLite shape, transient by message classification.
``terminal``
    Raise :class:`OSError` — a non-retryable failure, for exercising
    circuit breakers and store degradation.
``torn``
    Partial write: persist half the payload bytes to the real blob
    path, then raise a transient error as a real torn write would.
    Stores already treat truncated blobs as misses, so the entry is
    re-persisted on retry or re-simulated on miss — never trusted.
``expire_lease``
    The lease is granted already expired (``lease_seconds=0``), so a
    reclaim immediately hands the same job to someone else — the
    double-evaluation hazard the store-peek guard must absorb.
``kill_worker``
    A marker for process-level harnesses (``benchmarks/chaos_smoke``):
    the wrappers never raise it; the harness reads it from the plan
    and SIGKILLs a live worker at that point.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass, replace
from random import Random
from typing import Iterator, Mapping, Sequence

from repro.errors import (
    ReproError,
    TransientQueueError,
    TransientStoreError,
)
from repro.exec.store import CacheStore, EntryMeta, VerifyReport
from repro.exec.queue import Job, JobRecord, WorkQueue

#: Everything a :class:`FaultSpec` may inject.
FAULT_KINDS = (
    "transient",
    "locked",
    "terminal",
    "torn",
    "expire_lease",
    "kill_worker",
)

#: Wrapper targets a spec can aim at.
FAULT_TARGETS = ("store", "queue", "worker")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        target: ``"store"``, ``"queue"`` or ``"worker"``.
        op: operation name the fault rides on (``"persist"``,
            ``"lease"``, ...); ``"*"`` matches any operation on the
            target.
        at: fire on the Nth matching call, 1-based, counted per
            ``(target, op)`` pattern.
        kind: one of :data:`FAULT_KINDS`.
    """

    target: str
    op: str
    at: int
    kind: str

    def __post_init__(self) -> None:
        if self.target not in FAULT_TARGETS:
            raise ReproError(
                f"unknown fault target {self.target!r}; "
                f"expected one of {FAULT_TARGETS}"
            )
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.at < 1:
            raise ReproError(f"fault index must be >= 1, got {self.at}")

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "op": self.op,
            "at": self.at,
            "kind": self.kind,
        }


class FaultPlan:
    """A deterministic schedule of faults.

    The plan counts operations per ``(target, op)`` as the wrappers
    report them; when a spec's index comes up the fault fires (each
    spec fires exactly once) and is logged in :attr:`fired`.  The
    plan is thread-safe — cooperating submitters and in-process
    worker threads may share one.

    Args:
        specs: the schedule.  An empty plan injects nothing, which is
            exactly as boring as it sounds — and proved so by the
            contract suites.
        seed: recorded provenance for plans built by
            :meth:`aggressive`.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int | None = None):
        self.specs = tuple(specs)
        self.seed = seed
        self.fired: list[dict] = []
        self._counts: dict[tuple[str, str], int] = {}
        self._spent: set[FaultSpec] = set()
        self._lock = threading.Lock()

    @classmethod
    def aggressive(
        cls,
        seed: int,
        *,
        store_ops: int = 6,
        queue_ops: int = 4,
        torn_writes: int = 1,
        lease_expiries: int = 1,
        worker_kills: int = 0,
        horizon: int = 40,
    ) -> "FaultPlan":
        """A seeded, hostile-but-survivable schedule.

        Scatters transient/locked faults over the first ``horizon``
        store and queue calls, plus torn writes, born-expired leases
        and optional worker-kill markers.  Same seed, same schedule —
        the chaos smoke's reproducibility assertion rests on this.
        """
        rng = Random(seed)
        specs: list[FaultSpec] = []
        for _ in range(store_ops):
            specs.append(
                FaultSpec(
                    "store",
                    rng.choice(
                        ("persist", "load", "peek", "load_many", "persist_many")
                    ),
                    rng.randint(1, horizon),
                    rng.choice(("transient", "locked")),
                )
            )
        for _ in range(torn_writes):
            specs.append(
                FaultSpec("store", "persist", rng.randint(1, horizon), "torn")
            )
        for _ in range(queue_ops):
            specs.append(
                FaultSpec(
                    "queue",
                    rng.choice(
                        (
                            "submit",
                            "lease",
                            "complete",
                            "heartbeat",
                            "complete_many",
                            "heartbeat_many",
                        )
                    ),
                    rng.randint(1, horizon),
                    rng.choice(("transient", "locked")),
                )
            )
        for _ in range(lease_expiries):
            specs.append(
                FaultSpec(
                    "queue", "lease", rng.randint(1, horizon), "expire_lease"
                )
            )
        for _ in range(worker_kills):
            specs.append(
                FaultSpec(
                    "worker", "evaluate", rng.randint(1, horizon), "kill_worker"
                )
            )
        return cls(specs, seed=seed)

    def tick(self, target: str, op: str) -> FaultSpec | None:
        """Count one operation; return the spec that fires, if any."""
        with self._lock:
            for pattern in ((target, op), (target, "*")):
                self._counts[pattern] = self._counts.get(pattern, 0) + 1
            for spec in self.specs:
                if spec in self._spent or spec.target != target:
                    continue
                if spec.op not in (op, "*"):
                    continue
                if self._counts[(target, spec.op)] == spec.at:
                    self._spent.add(spec)
                    self.fired.append({**spec.as_dict(), "on_op": op})
                    return spec
            return None

    def kill_points(self) -> list[FaultSpec]:
        """The worker-kill markers, for process-level harnesses."""
        return [s for s in self.specs if s.kind == "kill_worker"]

    def remaining(self) -> int:
        """Specs that have not fired yet (kill markers excluded)."""
        return sum(
            1
            for s in self.specs
            if s not in self._spent and s.kind != "kill_worker"
        )

    def schedule(self) -> list[dict]:
        """The full schedule as data — two plans built from the same
        seed compare equal here."""
        return [s.as_dict() for s in self.specs]

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "specs": len(self.specs),
            "fired": len(self.fired),
        }


def _raise_store_fault(spec: FaultSpec, op: str) -> None:
    if spec.kind in ("transient", "torn"):
        raise TransientStoreError(
            f"injected {spec.kind} fault on store.{op} (#{spec.at})"
        )
    if spec.kind == "locked":
        raise sqlite3.OperationalError("database is locked")
    if spec.kind == "terminal":
        raise OSError(f"injected terminal fault on store.{op} (#{spec.at})")


def _raise_queue_fault(spec: FaultSpec, op: str) -> None:
    if spec.kind == "transient":
        raise TransientQueueError(
            f"injected transient fault on queue.{op} (#{spec.at})"
        )
    if spec.kind == "locked":
        raise sqlite3.OperationalError("database is locked")
    if spec.kind == "terminal":
        raise OSError(f"injected terminal fault on queue.{op} (#{spec.at})")


class FaultyStore(CacheStore):
    """A :class:`CacheStore` that executes a :class:`FaultPlan`.

    Faults fire *before* the delegated call (the operation is lost,
    as with a real error), except ``torn`` on ``persist``, which
    first leaves a half-written blob at the real path when the
    wrapped store is file-backed — the nastier failure, because a
    corpse is left on disk for ``load``/``verify`` to distrust.
    """

    def __init__(self, inner: CacheStore, plan: FaultPlan):
        super().__init__()
        self._inner = inner
        self.plan = plan
        self.name = f"faulty[{inner.name}]"
        self.stats = inner.stats

    @property
    def inner(self) -> CacheStore:
        return self._inner

    def __getattr__(self, name: str):
        # Store-specific surface (directory, path, _conn, ...) passes
        # through so contract-suite corruption hooks keep working.
        return getattr(self._inner, name)

    def _fault(self, op: str, fingerprint: str | None = None, responses=None):
        spec = self.plan.tick("store", op)
        if spec is None:
            return
        if (
            spec.kind == "torn"
            and op == "persist"
            and fingerprint is not None
            and hasattr(self._inner, "_path")
        ):
            # Leave a genuinely torn blob behind before failing.
            import json

            payload = json.dumps(
                {"fingerprint": fingerprint, "responses": responses or {}}
            )
            path = self._inner._path(fingerprint)
            path.write_text(payload[: max(len(payload) // 2, 1)])
        _raise_store_fault(spec, op)

    # -- CacheStore contract, fault check first, then delegate -----------------

    def load(self, fingerprint: str):
        self._fault("load")
        return self._inner.load(fingerprint)

    def peek(self, fingerprint: str):
        self._fault("peek")
        return self._inner.peek(fingerprint)

    def persist(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None = None,
    ) -> None:
        self._fault("persist", fingerprint, dict(responses))
        self._inner.persist(fingerprint, responses, meta=meta)

    def load_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        self._fault("load_many")
        return self._inner.load_many(fingerprints)

    def persist_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        entries = list(entries)
        spec = self.plan.tick("store", "persist_many")
        if spec is not None:
            # A mid-batch failure: the first half of the batch
            # genuinely lands before the error surfaces, so retries
            # must be idempotent to neither lose nor double-apply.
            self._inner.persist_many(entries[: len(entries) // 2])
            _raise_store_fault(spec, "persist_many")
        self._inner.persist_many(entries)

    def discard(self, fingerprint: str) -> bool:
        self._fault("discard")
        return self._inner.discard(fingerprint)

    def clear(self) -> None:
        self._fault("clear")
        self._inner.clear()

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._inner

    def items(self):
        yield from self._inner.items()

    def entries(self):
        yield from self._inner.entries()

    def entry_meta(self, fingerprint: str):
        return self._inner.entry_meta(fingerprint)

    def total_bytes(self) -> int:
        return self._inner.total_bytes()

    def verify(self, repair: bool = False) -> VerifyReport:
        return self._inner.verify(repair=repair)

    def compact(self, *, grace_seconds: float = 60.0):
        report = self._inner.compact(grace_seconds=grace_seconds)
        return replace(report, store=self.name)

    def describe(self) -> dict:
        return {
            **self._inner.describe(),
            "store": self.name,
            "faulty": True,
            "fault_plan": self.plan.describe(),
        }

    def close(self) -> None:
        self._inner.close()


class FaultyQueue(WorkQueue):
    """A :class:`WorkQueue` that executes a :class:`FaultPlan`.

    ``expire_lease`` is special-cased on :meth:`lease`: instead of
    raising, the call succeeds with ``lease_seconds=0`` — the caller
    believes it holds a lease that any reclaim will immediately
    revoke, which is precisely how a stalled worker looks from the
    outside.
    """

    def __init__(self, inner: WorkQueue, plan: FaultPlan):
        super().__init__(max_attempts=inner.max_attempts)
        # WorkQueue.__init__ sets an instance-level transactions
        # counter that would shadow __getattr__ delegation; drop it so
        # reads see the inner queue's live counter.
        self.__dict__.pop("transactions", None)
        self._inner = inner
        self.plan = plan
        self.name = f"faulty[{inner.name}]"

    @property
    def inner(self) -> WorkQueue:
        return self._inner

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def _fault(self, op: str) -> FaultSpec | None:
        spec = self.plan.tick("queue", op)
        if spec is None:
            return None
        if spec.kind == "expire_lease":
            return spec
        _raise_queue_fault(spec, op)
        return None

    def submit(self, jobs: Sequence[Job]) -> int:
        self._fault("submit")
        return self._inner.submit(jobs)

    def lease(
        self,
        worker_id: str,
        n: int = 1,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> list[Job]:
        spec = self._fault("lease")
        if spec is not None and spec.kind == "expire_lease":
            lease_seconds = 0.0
        return self._inner.lease(worker_id, n, lease_seconds, now)

    def complete(
        self,
        worker_id: str,
        job_id: str,
        *,
        seconds: float = 0.0,
        now: float | None = None,
    ) -> bool:
        self._fault("complete")
        return self._inner.complete(
            worker_id, job_id, seconds=seconds, now=now
        )

    def fail(
        self,
        worker_id: str,
        job_id: str,
        error: str = "",
        now: float | None = None,
    ) -> bool:
        self._fault("fail")
        return self._inner.fail(worker_id, job_id, error, now)

    def heartbeat(
        self,
        worker_id: str,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        self._fault("heartbeat")
        return self._inner.heartbeat(worker_id, lease_seconds, now)

    def complete_many(
        self,
        worker_id: str,
        completions: Sequence[tuple[str, float]],
        *,
        now: float | None = None,
    ) -> int:
        completions = list(completions)
        spec = self.plan.tick("queue", "complete_many")
        if spec is not None and spec.kind != "expire_lease":
            # Mid-batch failure: the first half genuinely completes
            # before the error, exercising idempotent re-application.
            self._inner.complete_many(
                worker_id, completions[: len(completions) // 2], now=now
            )
            _raise_queue_fault(spec, "complete_many")
        return self._inner.complete_many(worker_id, completions, now=now)

    def fail_many(
        self,
        worker_id: str,
        failures: Sequence[tuple[str, str]],
        now: float | None = None,
    ) -> int:
        self._fault("fail_many")
        return self._inner.fail_many(worker_id, failures, now)

    def heartbeat_many(
        self,
        worker_id: str,
        job_ids: Sequence[str],
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        self._fault("heartbeat_many")
        return self._inner.heartbeat_many(
            worker_id, job_ids, lease_seconds, now
        )

    def reclaim(self, now: float | None = None) -> int:
        self._fault("reclaim")
        return self._inner.reclaim(now)

    def requeue(self, job_id: str, now: float | None = None) -> bool:
        self._fault("requeue")
        return self._inner.requeue(job_id, now)

    def purge(
        self,
        statuses: Sequence[str] = ("done", "failed"),
        older_than_seconds: float = 0.0,
        now: float | None = None,
    ) -> int:
        self._fault("purge")
        return self._inner.purge(statuses, older_than_seconds, now)

    def job(self, job_id: str) -> JobRecord | None:
        return self._inner.job(job_id)

    def jobs(self) -> Iterator[JobRecord]:
        yield from self._inner.jobs()

    def __len__(self) -> int:
        return len(self._inner)

    def stats(self, now: float | None = None):
        return self._inner.stats(now)

    def describe(self) -> dict:
        return {
            **self._inner.describe(),
            "queue": self.name,
            "faulty": True,
            "fault_plan": self.plan.describe(),
        }

    def close(self) -> None:
        self._inner.close()
