"""Parallel & memoized design-point evaluation.

This package is the execution layer between the DoE/RSM flow and the
simulation engines: a pluggable backend (serial loop or a chunked
``multiprocessing`` fan-out) composed with a content-addressed
evaluation cache, behind :class:`EvaluationEngine`'s single
``map_points`` API.  :class:`~repro.core.explorer.DesignExplorer` and
:class:`~repro.core.toolkit.SensorNodeDesignToolkit` route every
design run, validation sweep and study through it.
"""

from repro.exec.backends import (
    EvaluationBackend,
    ProcessBackend,
    SerialBackend,
    resolve_backend,
)
from repro.exec.cache import CacheStats, EvalCache, point_fingerprint
from repro.exec.engine import EvaluationEngine, PointEvaluation

__all__ = [
    "CacheStats",
    "EvalCache",
    "EvaluationBackend",
    "EvaluationEngine",
    "PointEvaluation",
    "ProcessBackend",
    "SerialBackend",
    "point_fingerprint",
    "resolve_backend",
]
