"""Parallel, memoized & distributed design-point evaluation.

This package is the execution layer between the DoE/RSM flow and the
simulation engines: pluggable backends behind a futures-style
submit/drain contract (serial loop, chunked ``multiprocessing``
fan-out, thread pool, or a store-leased distributed backend) composed
with a content-addressed evaluation cache, behind
:class:`EvaluationEngine`'s single ``map_points`` API.
:class:`~repro.core.explorer.DesignExplorer` and
:class:`~repro.core.toolkit.SensorNodeDesignToolkit` route every
design run, validation sweep and study through it.  Cache entries live
in a pluggable :class:`CacheStore` — in-memory by default, or a
file-per-fingerprint directory / WAL-mode SQLite database that shares
evaluations across processes, CI runs and hosts.  A persistent store
doubles as the substrate of the distributed backend: a durable
:class:`WorkQueue` (:mod:`repro.exec.queue`) co-located with the store
hands leased design points to any number of ``repro-worker``
processes (:mod:`repro.exec.worker`), which publish results back
through the store.  Store *lifecycle* (GC budgets, compaction,
verification, export/merge) lives in :mod:`repro.exec.lifecycle`,
surfaced to operators as the ``repro-cache`` CLI
(:mod:`repro.exec.cli`, including the ``queue`` subcommands).

The substrate is hardened by a resilience layer
(:mod:`repro.exec.resilience`): deterministic
:class:`RetryPolicy` backoff around every store/queue call, a
per-component :class:`CircuitBreaker`, graceful degradation
(:class:`ResilientStore`'s memory overlay; the distributed backend's
in-process fallback), and worker supervision (``repro-worker
--supervise``).  Its claims are pinned by deterministic fault
injection (:mod:`repro.exec.faults`): a seeded :class:`FaultPlan`
executed by transparent :class:`FaultyStore`/:class:`FaultyQueue`
wrappers, driven to full-study scale by ``benchmarks/chaos_smoke.py``.
"""

from repro.exec.backends import (
    EvaluationBackend,
    JobHandle,
    ProcessBackend,
    SerialBackend,
    SynchronousBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.exec.cache import CacheStats, EvalCache, point_fingerprint
from repro.exec.engine import EvaluationEngine, PointEvaluation
from repro.exec.lifecycle import (
    GCBudget,
    GCReport,
    TransferReport,
    collect,
    merge_stores,
    register_policy,
)
from repro.exec.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyQueue,
    FaultyStore,
)
from repro.exec.queue import (
    QUEUE_SCHEMA_VERSION,
    DistributedBackend,
    FileWorkQueue,
    Job,
    JobRecord,
    QueueStats,
    SQLiteWorkQueue,
    WorkQueue,
    queue_for_store,
    resolve_queue,
)
from repro.exec.store import (
    SCHEMA_VERSION,
    CacheStore,
    CompactionReport,
    EntryMeta,
    FileStore,
    MemoryStore,
    SQLiteStore,
    StoreStats,
    VerifyReport,
    resolve_store,
)
from repro.exec.resilience import (
    CircuitBreaker,
    ResilienceStats,
    ResilientQueue,
    ResilientStore,
    RetryPolicy,
)
from repro.exec.worker import (
    Supervisor,
    SupervisorReport,
    Worker,
    WorkerReport,
)

__all__ = [
    "CacheStats",
    "CacheStore",
    "CircuitBreaker",
    "CompactionReport",
    "DistributedBackend",
    "EntryMeta",
    "EvalCache",
    "EvaluationBackend",
    "EvaluationEngine",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyQueue",
    "FaultyStore",
    "FileStore",
    "FileWorkQueue",
    "GCBudget",
    "GCReport",
    "Job",
    "JobHandle",
    "JobRecord",
    "MemoryStore",
    "PointEvaluation",
    "ProcessBackend",
    "QUEUE_SCHEMA_VERSION",
    "QueueStats",
    "ResilienceStats",
    "ResilientQueue",
    "ResilientStore",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "SQLiteStore",
    "SQLiteWorkQueue",
    "SerialBackend",
    "StoreStats",
    "Supervisor",
    "SupervisorReport",
    "SynchronousBackend",
    "ThreadBackend",
    "TransferReport",
    "VerifyReport",
    "Worker",
    "WorkerReport",
    "WorkQueue",
    "collect",
    "merge_stores",
    "point_fingerprint",
    "queue_for_store",
    "register_policy",
    "resolve_backend",
    "resolve_queue",
    "resolve_store",
]
