"""Parallel & memoized design-point evaluation.

This package is the execution layer between the DoE/RSM flow and the
simulation engines: a pluggable backend (serial loop or a chunked
``multiprocessing`` fan-out) composed with a content-addressed
evaluation cache, behind :class:`EvaluationEngine`'s single
``map_points`` API.  :class:`~repro.core.explorer.DesignExplorer` and
:class:`~repro.core.toolkit.SensorNodeDesignToolkit` route every
design run, validation sweep and study through it.  Cache entries live
in a pluggable :class:`CacheStore` — in-memory by default, or a
file-per-fingerprint directory / WAL-mode SQLite database that shares
evaluations across processes, CI runs and hosts.  Store *lifecycle*
(GC budgets, compaction, verification, export/merge) lives in
:mod:`repro.exec.lifecycle`, surfaced to operators as the
``repro-cache`` CLI (:mod:`repro.exec.cli`).
"""

from repro.exec.backends import (
    EvaluationBackend,
    ProcessBackend,
    SerialBackend,
    resolve_backend,
)
from repro.exec.cache import CacheStats, EvalCache, point_fingerprint
from repro.exec.engine import EvaluationEngine, PointEvaluation
from repro.exec.lifecycle import (
    GCBudget,
    GCReport,
    TransferReport,
    collect,
    merge_stores,
    register_policy,
)
from repro.exec.store import (
    SCHEMA_VERSION,
    CacheStore,
    CompactionReport,
    EntryMeta,
    FileStore,
    MemoryStore,
    SQLiteStore,
    StoreStats,
    VerifyReport,
    resolve_store,
)

__all__ = [
    "CacheStats",
    "CacheStore",
    "CompactionReport",
    "EntryMeta",
    "EvalCache",
    "EvaluationBackend",
    "EvaluationEngine",
    "FileStore",
    "GCBudget",
    "GCReport",
    "MemoryStore",
    "PointEvaluation",
    "ProcessBackend",
    "SCHEMA_VERSION",
    "SQLiteStore",
    "SerialBackend",
    "StoreStats",
    "TransferReport",
    "VerifyReport",
    "collect",
    "merge_stores",
    "point_fingerprint",
    "register_policy",
    "resolve_backend",
    "resolve_store",
]
