"""Durable work queues and the store-leased distributed backend.

A :class:`WorkQueue` is the dispatch half of the shared substrate the
persistent :class:`~repro.exec.store.CacheStore` began: submitters
enqueue design points as durable *jobs*, any number of workers —
other processes, other hosts — atomically :meth:`~WorkQueue.lease`
them, publish responses into the shared store, and
:meth:`~WorkQueue.complete` the job.  Leases carry a TTL and can be
:meth:`~WorkQueue.heartbeat`-extended; a worker that dies mid-lease
simply stops renewing, and its jobs are reclaimed for the survivors —
no point is ever lost, because every state transition is atomic and
evaluations are deterministic (the worst crash window duplicates an
evaluation whose payload is identical, never corrupts one).

Two implementations mirror the store pair:

* :class:`SQLiteWorkQueue` — a ``queue_jobs`` table in a WAL-mode
  database, which may be *the same file* as a
  :class:`~repro.exec.store.SQLiteStore`: one ``.sqlite`` path then
  carries both halves of the substrate.  Leasing is a single
  ``BEGIN IMMEDIATE`` transaction, and an expired lease is reclaimed
  by the next lease call automatically.
* :class:`FileWorkQueue` — one JSON file per job whose *filename*
  carries the status (``<job>.pending.json`` → ``.leased`` → ``.done``
  / ``.failed``); claims are exclusive because ``os.rename`` has
  exactly one winner.  Inside a store directory it lives in the
  ``.queue/`` subdirectory (dot-prefixed, so the file store never
  mistakes queue rows for cache blobs).

:func:`resolve_queue` maps one path spec to the right queue the same
way :func:`~repro.exec.store.resolve_store` does for stores, and
:func:`queue_for_store` derives the queue co-located with a store —
the topology every worker and submitter shares by just pointing at
one path.

:class:`DistributedBackend` is the execution side: ``submit`` checks
the shared store, enqueues the misses, and the returned handle
assembles ordered results as they appear in the store — optionally
*cooperating* (leasing and evaluating jobs itself while it waits), so
one process completes alone, and N processes running the same study
against one path split the work between them.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import time
import uuid
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.resilience import RetryPolicy

from repro.errors import ReproError
from repro.exec.backends import (
    EvaluationBackend,
    Evaluator,
    JobHandle,
    PointResult,
)
from repro.exec.sqlite_util import connect_wal
from repro.exec.store import CacheStore, FileStore, SQLiteStore, resolve_store
from repro.obs.catalog import track_queue
from repro.obs.events import emit_event

#: On-disk schema version of queue rows/files; a mismatched job is
#: marked failed (never silently evaluated under stale semantics).
QUEUE_SCHEMA_VERSION = 1

#: Subdirectory a file queue occupies inside a store directory.
QUEUE_SUBDIR = ".queue"

#: Every status a job can be in.  pending -> leased -> done, with
#: failed as the terminal state after ``max_attempts`` leases.
JOB_STATUSES = ("pending", "leased", "done", "failed")

#: Lease horizon assumed for a leased job whose record predates its
#: worker writing the lease stamp (a claim crashed mid-transition).
_FALLBACK_LEASE_SECONDS = 60.0


@dataclass
class Job:
    """One unit of work: evaluate a physical design point.

    ``job_id`` is the submitter's content-addressed identity for the
    point (the cache fingerprint), so the queue deduplicates
    concurrent submitters for free and workers publish results under
    exactly the key the submitter polls.
    """

    job_id: str
    point: dict[str, float]


@dataclass
class JobRecord:
    """One job's queue row, for inspection and the CLI.

    Attributes:
        job_id: content hash the job is filed under.
        status: one of :data:`JOB_STATUSES`.
        point: the payload (None when unreadable).
        worker_id: current/last lease holder.
        attempts: leases taken so far.
        enqueued_at / lease_expires_at / completed_at: epoch stamps.
        leased_at: when the current lease was granted (None on rows
            written before the column existed).
        heartbeat_at: the lease's most recent extension (falls back to
            ``leased_at`` when the worker has not heartbeat yet).
        seconds: evaluation wall time reported on completion.
        error: last failure message, if any.
    """

    job_id: str
    status: str
    point: dict[str, float] | None = None
    worker_id: str | None = None
    attempts: int = 0
    enqueued_at: float | None = None
    lease_expires_at: float | None = None
    completed_at: float | None = None
    seconds: float | None = None
    error: str | None = None
    leased_at: float | None = None
    heartbeat_at: float | None = None

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "point": self.point,
            "worker_id": self.worker_id,
            "attempts": self.attempts,
            "enqueued_at": self.enqueued_at,
            "lease_expires_at": self.lease_expires_at,
            "completed_at": self.completed_at,
            "seconds": self.seconds,
            "error": self.error,
            "leased_at": self.leased_at,
            "heartbeat_at": self.heartbeat_at,
        }


@dataclass
class QueueStats:
    """Occupancy of one queue, by status.

    ``expired`` counts the subset of leased jobs whose lease has
    lapsed (reclaimable by the next lease/reclaim call); ``invalid``
    counts rows whose payload no longer decodes.
    """

    pending: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0
    expired: int = 0
    invalid: int = 0

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done + self.failed

    @property
    def outstanding(self) -> int:
        """Jobs not yet finished (pending + leased)."""
        return self.pending + self.leased

    def as_dict(self) -> dict:
        return {
            "pending": self.pending,
            "leased": self.leased,
            "done": self.done,
            "failed": self.failed,
            "expired": self.expired,
            "invalid": self.invalid,
            "total": self.total,
            "outstanding": self.outstanding,
        }


def _validate_point(payload: object) -> dict[str, float] | None:
    """A job's point from its decoded payload, or None."""
    if not isinstance(payload, dict):
        return None
    out: dict[str, float] = {}
    for name, value in payload.items():
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            return None
        out[name] = float(value)
    return out


def default_worker_id() -> str:
    """A worker identity unique across hosts and processes."""
    import socket

    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class WorkQueue(ABC):
    """Durable, multi-process job queue over design points.

    The contract: :meth:`submit` deduplicates on ``job_id`` (a job
    already known in any status is not re-added), :meth:`lease`
    atomically claims up to ``n`` runnable jobs (pending ones plus
    leased ones whose TTL lapsed — reclamation is built into the
    claim), :meth:`complete`/:meth:`fail` only honour the current
    lease holder (a late call from a worker whose lease was reclaimed
    is a no-op returning False), and every transition is atomic, so a
    killed worker can delay a point but never lose one.

    Batch variants (:meth:`complete_many` / :meth:`fail_many` /
    :meth:`heartbeat_many`) fold a worker batch's transitions into one
    substrate round trip where the implementation can (one SQLite
    transaction); their defaults loop the per-job primitives, so every
    queue honours the same laws: empty input touches nothing, each
    pair applies in order, and the return value counts transitions
    that actually happened.

    Args:
        max_attempts: leases after which a job goes terminally
            ``failed`` instead of back to pending.

    Attributes:
        transactions: queue API round trips this instance issued —
            every public read or write call (a batched call counts 1
            however many jobs it carries).  Monotonic, surfaced as
            ``queue_transactions`` in engine/report stats so the
            amortization is observable.
        lease_grants: jobs handed out by :meth:`lease` calls on this
            instance (mirrored as ``repro_lease_grants_total``).
        lease_reclaims: expired leases this instance returned to
            pending — via :meth:`reclaim` or folded into a
            :meth:`lease` claim (``repro_lease_reclaims_total``).
    """

    name: str = "abstract"

    def __init__(self, max_attempts: int = 3):
        if max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self.transactions = 0
        self.lease_grants = 0
        self.lease_reclaims = 0
        track_queue(self)

    @abstractmethod
    def submit(self, jobs: Sequence[Job]) -> int:
        """Enqueue jobs; returns how many were actually new."""

    @abstractmethod
    def lease(
        self,
        worker_id: str,
        n: int = 1,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> list[Job]:
        """Atomically claim up to ``n`` runnable jobs for a worker."""

    @abstractmethod
    def complete(
        self,
        worker_id: str,
        job_id: str,
        *,
        seconds: float = 0.0,
        now: float | None = None,
    ) -> bool:
        """Mark a leased job done; False if the lease is not held."""

    @abstractmethod
    def fail(
        self,
        worker_id: str,
        job_id: str,
        error: str = "",
        now: float | None = None,
    ) -> bool:
        """Record a failed attempt — back to pending, or terminally
        failed once ``max_attempts`` leases are spent."""

    @abstractmethod
    def heartbeat(
        self,
        worker_id: str,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        """Extend every lease a worker holds; returns how many."""

    # -- batched transitions ---------------------------------------------------

    def complete_many(
        self,
        worker_id: str,
        completions: Sequence[tuple[str, float]],
        *,
        now: float | None = None,
    ) -> int:
        """Mark many leased jobs done in one call.

        ``completions`` is ``(job_id, seconds)`` pairs, applied in
        order; returns how many transitions the worker's lease still
        covered.  This default loops :meth:`complete`; SQLite folds
        the batch into one transaction.
        """
        done = 0
        for job_id, seconds in completions:
            if self.complete(worker_id, job_id, seconds=seconds, now=now):
                done += 1
        return done

    def fail_many(
        self,
        worker_id: str,
        failures: Sequence[tuple[str, str]],
        now: float | None = None,
    ) -> int:
        """Record many failed attempts (``(job_id, error)`` pairs) in
        one call; returns how many the worker's lease still covered."""
        failed = 0
        for job_id, error in failures:
            if self.fail(worker_id, job_id, error, now=now):
                failed += 1
        return failed

    def heartbeat_many(
        self,
        worker_id: str,
        job_ids: Sequence[str],
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        """Extend the named leases the worker holds; returns how many
        leases were extended.

        This default delegates to :meth:`heartbeat`, which extends
        *every* lease the worker holds — a documented superset (the
        return value may exceed ``len(job_ids)``).  Implementations
        that can target the named jobs cheaply override it.
        """
        if not job_ids:
            return 0
        return self.heartbeat(worker_id, lease_seconds, now)

    @abstractmethod
    def reclaim(self, now: float | None = None) -> int:
        """Return expired leases to pending; returns how many."""

    @abstractmethod
    def requeue(self, job_id: str, now: float | None = None) -> bool:
        """Force a non-pending job back to pending with fresh
        attempts (operator override; False if absent or pending)."""

    @abstractmethod
    def purge(
        self,
        statuses: Sequence[str] = ("done", "failed"),
        older_than_seconds: float = 0.0,
        now: float | None = None,
    ) -> int:
        """Drop finished rows older than a horizon; returns count."""

    @abstractmethod
    def job(self, job_id: str) -> JobRecord | None:
        """One job's record, or None."""

    @abstractmethod
    def jobs(self) -> Iterator[JobRecord]:
        """Iterate every job record."""

    @abstractmethod
    def __len__(self) -> int:
        """Total rows, all statuses."""

    def stats(self, now: float | None = None) -> QueueStats:
        """Occupancy by status (one scan)."""
        clock = time.time() if now is None else now
        stats = QueueStats()
        for record in self.jobs():
            if record.status == "pending":
                stats.pending += 1
            elif record.status == "leased":
                stats.leased += 1
                expiry = record.lease_expires_at
                if expiry is not None and expiry < clock:
                    stats.expired += 1
            elif record.status == "done":
                stats.done += 1
            elif record.status == "failed":
                stats.failed += 1
            if record.point is None:
                stats.invalid += 1
        return stats

    def worker_stats(
        self, now: float | None = None
    ) -> dict[str, dict[str, float | int | None]]:
        """Per-worker lease health, from one :meth:`jobs` scan.

        Returns ``{worker_id: {jobs_held, oldest_lease_age,
        last_heartbeat_age, next_expiry_in}}`` for every worker
        currently holding a lease.  Ages are seconds relative to
        ``now``; ``None`` where a row predates the ``leased_at`` /
        ``heartbeat_at`` stamps (queues written by older code).  A
        worker with a large ``last_heartbeat_age`` and small
        ``next_expiry_in`` is wedged and about to be reclaimed.
        """
        clock = time.time() if now is None else now
        out: dict[str, dict[str, float | int | None]] = {}
        for record in self.jobs():
            if record.status != "leased" or not record.worker_id:
                continue
            info = out.setdefault(
                record.worker_id,
                {
                    "jobs_held": 0,
                    "oldest_lease_age": None,
                    "last_heartbeat_age": None,
                    "next_expiry_in": None,
                },
            )
            info["jobs_held"] = int(info["jobs_held"] or 0) + 1
            if record.leased_at is not None:
                age = clock - record.leased_at
                prior = info["oldest_lease_age"]
                if prior is None or age > prior:
                    info["oldest_lease_age"] = age
            beat = (
                record.heartbeat_at
                if record.heartbeat_at is not None
                else record.leased_at
            )
            if beat is not None:
                beat_age = clock - beat
                prior = info["last_heartbeat_age"]
                if prior is None or beat_age < prior:
                    info["last_heartbeat_age"] = beat_age
            if record.lease_expires_at is not None:
                remaining = record.lease_expires_at - clock
                prior = info["next_expiry_in"]
                if prior is None or remaining < prior:
                    info["next_expiry_in"] = remaining
        return out

    def describe(self) -> dict:
        """Queue parameters for reports and manifests."""
        return {"queue": self.name, "max_attempts": self.max_attempts}

    def close(self) -> None:
        """Release held resources (connections); idempotent."""


class SQLiteWorkQueue(WorkQueue):
    """Job rows in a WAL-mode SQLite database.

    The ``queue_jobs`` table happily shares a database file with
    :class:`~repro.exec.store.SQLiteStore`'s ``evaluations`` table —
    one ``.sqlite`` path is then the whole distributed substrate
    (results + work).  Unlike the store, the queue never deletes a
    corrupt database (it may hold a healthy evaluations table it has
    no right to destroy); open errors propagate.

    Args:
        path: database file; parent directories are created.
        timeout: seconds a writer waits on a locked database.
        max_attempts: see :class:`WorkQueue`.
    """

    name = "sqlite"

    def __init__(
        self,
        path: str | os.PathLike,
        timeout: float = 30.0,
        max_attempts: int = 3,
    ):
        super().__init__(max_attempts=max_attempts)
        self.path = Path(path)
        self.timeout = float(timeout)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create queue directory {self.path.parent}: {error}"
            ) from error
        self._closed = False
        self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        # Autocommit mode: leasing needs an explicit BEGIN IMMEDIATE,
        # and sqlite3's implicit transactions would fight it.
        conn = connect_wal(
            self.path, timeout=self.timeout, autocommit=True
        )
        try:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS queue_jobs ("
                " job_id TEXT PRIMARY KEY,"
                " schema_version INTEGER NOT NULL,"
                " payload TEXT NOT NULL,"
                " status TEXT NOT NULL DEFAULT 'pending',"
                " worker_id TEXT,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " enqueued_at REAL NOT NULL,"
                " lease_expires_at REAL,"
                " completed_at REAL,"
                " seconds REAL,"
                " error TEXT,"
                " leased_at REAL,"
                " heartbeat_at REAL)"
            )
            # In-place migration for databases created before the
            # lease-lifecycle stamps existed: ALTER TABLE is cheap
            # (no rewrite) and old rows read back as NULL.
            present = {
                row[1]
                for row in conn.execute("PRAGMA table_info(queue_jobs)")
            }
            for column in ("leased_at", "heartbeat_at"):
                if column not in present:
                    conn.execute(
                        f"ALTER TABLE queue_jobs ADD COLUMN {column} REAL"
                    )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS queue_jobs_status"
                " ON queue_jobs (status, enqueued_at)"
            )
            # Covering index for the reclamation predicate
            # (status = 'leased' AND lease_expires_at < ?): without
            # it, every lease()/reclaim() walks the whole table once
            # done rows accumulate.  CREATE IF NOT EXISTS doubles as
            # the in-place migration for pre-existing queues.
            conn.execute(
                "CREATE INDEX IF NOT EXISTS queue_jobs_lease_expiry"
                " ON queue_jobs (status, lease_expires_at)"
            )
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def submit(self, jobs: Sequence[Job]) -> int:
        if not jobs:
            return 0
        self.transactions += 1
        now = time.time()
        rows = [
            (
                job.job_id,
                QUEUE_SCHEMA_VERSION,
                json.dumps(dict(job.point), sort_keys=True),
                now,
            )
            for job in jobs
        ]
        # One transaction for the whole batch (the connection is in
        # autocommit mode, which would otherwise commit per row);
        # INSERT OR IGNORE keeps submit idempotent per job_id, and
        # executemany's rowcount sums only the rows actually inserted.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = self._conn.executemany(
                "INSERT OR IGNORE INTO queue_jobs"
                " (job_id, schema_version, payload, status, enqueued_at)"
                " VALUES (?, ?, ?, 'pending', ?)",
                rows,
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return max(cursor.rowcount, 0)

    def lease(
        self,
        worker_id: str,
        n: int = 1,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> list[Job]:
        if n < 1:
            raise ReproError(f"lease size must be >= 1, got {n}")
        self.transactions += 1
        clock = time.time() if now is None else now
        claimed: list[Job] = []
        reclaimed: list[tuple[str, str | None]] = []
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            rows = self._conn.execute(
                "SELECT job_id, schema_version, payload, attempts,"
                " status, worker_id"
                " FROM queue_jobs"
                " WHERE status = 'pending'"
                "    OR (status = 'leased' AND lease_expires_at < ?)"
                " ORDER BY enqueued_at, job_id LIMIT ?",
                (clock, n),
            ).fetchall()
            for job_id, schema_version, payload, attempts, status, holder in rows:
                if status == "leased":
                    # Claiming an expired lease *is* the reclamation.
                    reclaimed.append((job_id, holder))
                point = self._decode_payload(schema_version, payload)
                if point is None:
                    # Unreadable work is unrunnable work: fail it in
                    # place so it cannot wedge a drain loop.
                    self._conn.execute(
                        "UPDATE queue_jobs SET status = 'failed',"
                        " worker_id = NULL, lease_expires_at = NULL,"
                        " error = 'corrupt or mis-versioned payload'"
                        " WHERE job_id = ?",
                        (job_id,),
                    )
                    continue
                if attempts >= self.max_attempts:
                    # An expired lease that already spent its attempts
                    # goes terminal instead of cycling forever.
                    self._conn.execute(
                        "UPDATE queue_jobs SET status = 'failed',"
                        " worker_id = NULL, lease_expires_at = NULL,"
                        " error = COALESCE(error, 'lease attempts exhausted')"
                        " WHERE job_id = ?",
                        (job_id,),
                    )
                    continue
                self._conn.execute(
                    "UPDATE queue_jobs SET status = 'leased',"
                    " worker_id = ?, lease_expires_at = ?,"
                    " leased_at = ?, heartbeat_at = ?,"
                    " attempts = attempts + 1 WHERE job_id = ?",
                    (worker_id, clock + lease_seconds, clock, clock, job_id),
                )
                claimed.append(Job(job_id=job_id, point=point))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        # Telemetry only after the transaction holds: the event log
        # must never record a claim that rolled back.
        self.lease_reclaims += len(reclaimed)
        for job_id, holder in reclaimed:
            emit_event(
                "lease_reclaim",
                queue=self.name,
                job_id=job_id,
                from_worker=holder,
                to_worker=worker_id,
            )
        if claimed:
            self.lease_grants += len(claimed)
            emit_event(
                "lease_grant",
                queue=self.name,
                worker=worker_id,
                jobs=len(claimed),
                reclaimed=len(reclaimed),
                lease_seconds=lease_seconds,
            )
        return claimed

    @staticmethod
    def _decode_payload(
        schema_version: int, payload: str
    ) -> dict[str, float] | None:
        if schema_version != QUEUE_SCHEMA_VERSION:
            return None
        try:
            decoded = json.loads(payload)
        except ValueError:
            return None
        return _validate_point(decoded)

    def complete(
        self,
        worker_id: str,
        job_id: str,
        *,
        seconds: float = 0.0,
        now: float | None = None,
    ) -> bool:
        self.transactions += 1
        clock = time.time() if now is None else now
        cursor = self._conn.execute(
            self._COMPLETE_SQL, (clock, seconds, job_id, worker_id)
        )
        return cursor.rowcount > 0

    _COMPLETE_SQL = (
        "UPDATE queue_jobs SET status = 'done', completed_at = ?,"
        " seconds = ?, lease_expires_at = NULL, error = NULL"
        " WHERE job_id = ? AND status = 'leased' AND worker_id = ?"
    )

    _FAIL_SQL = (
        "UPDATE queue_jobs SET"
        " status = CASE WHEN attempts >= ? THEN 'failed'"
        "               ELSE 'pending' END,"
        " worker_id = NULL, lease_expires_at = NULL,"
        " leased_at = NULL, heartbeat_at = NULL, error = ?"
        " WHERE job_id = ? AND status = 'leased' AND worker_id = ?"
    )

    def complete_many(
        self,
        worker_id: str,
        completions: Sequence[tuple[str, float]],
        *,
        now: float | None = None,
    ) -> int:
        if not completions:
            return 0
        self.transactions += 1
        clock = time.time() if now is None else now
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            done = 0
            for job_id, seconds in completions:
                cursor = self._conn.execute(
                    self._COMPLETE_SQL, (clock, seconds, job_id, worker_id)
                )
                done += max(cursor.rowcount, 0)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return done

    def fail_many(
        self,
        worker_id: str,
        failures: Sequence[tuple[str, str]],
        now: float | None = None,
    ) -> int:
        if not failures:
            return 0
        self.transactions += 1
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            failed = 0
            for job_id, error in failures:
                cursor = self._conn.execute(
                    self._FAIL_SQL,
                    (self.max_attempts, error or None, job_id, worker_id),
                )
                failed += max(cursor.rowcount, 0)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return failed

    def heartbeat_many(
        self,
        worker_id: str,
        job_ids: Sequence[str],
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        if not job_ids:
            return 0
        self.transactions += 1
        clock = time.time() if now is None else now
        unique = list(dict.fromkeys(job_ids))
        extended = 0
        # Chunk the IN list well under SQLite's host-parameter cap.
        for start in range(0, len(unique), 500):
            chunk = unique[start : start + 500]
            marks = ",".join("?" * len(chunk))
            cursor = self._conn.execute(
                "UPDATE queue_jobs SET lease_expires_at = ?,"
                " heartbeat_at = ?"
                " WHERE status = 'leased' AND worker_id = ?"
                f" AND job_id IN ({marks})",
                (clock + lease_seconds, clock, worker_id, *chunk),
            )
            extended += max(cursor.rowcount, 0)
        return extended

    def fail(
        self,
        worker_id: str,
        job_id: str,
        error: str = "",
        now: float | None = None,
    ) -> bool:
        self.transactions += 1
        cursor = self._conn.execute(
            self._FAIL_SQL,
            (self.max_attempts, error or None, job_id, worker_id),
        )
        return cursor.rowcount > 0

    def heartbeat(
        self,
        worker_id: str,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        self.transactions += 1
        clock = time.time() if now is None else now
        cursor = self._conn.execute(
            "UPDATE queue_jobs SET lease_expires_at = ?, heartbeat_at = ?"
            " WHERE status = 'leased' AND worker_id = ?",
            (clock + lease_seconds, clock, worker_id),
        )
        return max(cursor.rowcount, 0)

    def reclaim(self, now: float | None = None) -> int:
        self.transactions += 1
        clock = time.time() if now is None else now
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            expired = self._conn.execute(
                "SELECT job_id, worker_id FROM queue_jobs"
                " WHERE status = 'leased' AND lease_expires_at < ?",
                (clock,),
            ).fetchall()
            self._conn.execute(
                "UPDATE queue_jobs SET status = 'pending',"
                " worker_id = NULL, lease_expires_at = NULL,"
                " leased_at = NULL, heartbeat_at = NULL"
                " WHERE status = 'leased' AND lease_expires_at < ?",
                (clock,),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self.lease_reclaims += len(expired)
        for job_id, holder in expired:
            emit_event(
                "lease_reclaim",
                queue=self.name,
                job_id=job_id,
                from_worker=holder,
                to_worker=None,
            )
        return len(expired)

    def requeue(self, job_id: str, now: float | None = None) -> bool:
        self.transactions += 1
        cursor = self._conn.execute(
            "UPDATE queue_jobs SET status = 'pending', worker_id = NULL,"
            " lease_expires_at = NULL, completed_at = NULL,"
            " seconds = NULL, error = NULL, attempts = 0,"
            " leased_at = NULL, heartbeat_at = NULL"
            " WHERE job_id = ? AND status != 'pending'",
            (job_id,),
        )
        return cursor.rowcount > 0

    def purge(
        self,
        statuses: Sequence[str] = ("done", "failed"),
        older_than_seconds: float = 0.0,
        now: float | None = None,
    ) -> int:
        self.transactions += 1
        clock = time.time() if now is None else now
        cutoff = clock - max(older_than_seconds, 0.0)
        marks = ",".join("?" for _ in statuses)
        cursor = self._conn.execute(
            f"DELETE FROM queue_jobs WHERE status IN ({marks})"
            " AND COALESCE(completed_at, enqueued_at) < ?",
            (*statuses, cutoff),
        )
        return max(cursor.rowcount, 0)

    _ROW_COLUMNS = (
        "job_id, schema_version, payload, status, worker_id, attempts,"
        " enqueued_at, lease_expires_at, completed_at, seconds, error,"
        " leased_at, heartbeat_at"
    )

    def _record(self, row: tuple) -> JobRecord:
        (
            job_id,
            schema_version,
            payload,
            status,
            worker_id,
            attempts,
            enqueued_at,
            lease_expires_at,
            completed_at,
            seconds,
            error,
            leased_at,
            heartbeat_at,
        ) = row
        return JobRecord(
            job_id=job_id,
            status=status,
            point=self._decode_payload(schema_version, payload),
            worker_id=worker_id,
            attempts=int(attempts or 0),
            enqueued_at=enqueued_at,
            lease_expires_at=lease_expires_at,
            completed_at=completed_at,
            seconds=seconds,
            error=error,
            leased_at=leased_at,
            heartbeat_at=heartbeat_at,
        )

    def job(self, job_id: str) -> JobRecord | None:
        self.transactions += 1
        row = self._conn.execute(
            f"SELECT {self._ROW_COLUMNS} FROM queue_jobs"
            " WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        return self._record(row) if row is not None else None

    def jobs(self) -> Iterator[JobRecord]:
        self.transactions += 1
        rows = self._conn.execute(
            f"SELECT {self._ROW_COLUMNS} FROM queue_jobs"
            " ORDER BY enqueued_at, job_id"
        ).fetchall()
        for row in rows:
            yield self._record(row)

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM queue_jobs"
        ).fetchone()
        return int(row[0])

    def describe(self) -> dict:
        return {
            "queue": self.name,
            "path": str(self.path),
            "max_attempts": self.max_attempts,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()

    # Mirror SQLiteStore: connections cannot pickle, paths can.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_conn"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._closed = False
        self._conn = self._open()


class FileWorkQueue(WorkQueue):
    """One JSON file per job; the filename carries the status.

    A job lives at ``<dir>/<job_id>.<status>.json`` and moves between
    statuses by ``os.rename`` — atomic on POSIX, with exactly one
    winner, which is the whole claim protocol: the worker that renames
    ``.pending`` to ``.claim`` owns the job, stamps its lease into the
    payload and renames on to ``.leased``.  A crash between those
    steps leaves a single file whose *content* status is ahead of its
    *name*; :meth:`reclaim` heals such strays (content wins), so the
    worst a kill can do is hand a deterministic evaluation to two
    workers — never lose it.

    Args:
        directory: queue root; created if absent.
        max_attempts: see :class:`WorkQueue`.
    """

    name = "file"

    def __init__(self, directory: str | os.PathLike, max_attempts: int = 3):
        super().__init__(max_attempts=max_attempts)
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create queue directory {self.directory}: {error}"
            ) from error

    # -- paths ---------------------------------------------------------------

    def _path(self, job_id: str, status: str) -> Path:
        return self.directory / f"{job_id}.{status}.json"

    @staticmethod
    def _parse_name(name: str) -> tuple[str, str] | None:
        if not name.endswith(".json") or name.startswith("."):
            return None
        stem = name[: -len(".json")]
        job_id, dot, status = stem.rpartition(".")
        if not dot or status not in (*JOB_STATUSES, "claim"):
            return None
        return job_id, status

    def _job_files(self) -> list[tuple[str, str, Path]]:
        out = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:  # pragma: no cover - directory raced away
            return []
        for name in names:
            parsed = self._parse_name(name)
            if parsed is not None:
                out.append((*parsed, self.directory / name))
        return out

    def _read(self, path: Path) -> dict | None:
        try:
            blob = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(blob, dict)
            or blob.get("schema") != QUEUE_SCHEMA_VERSION
        ):
            return None
        return blob

    def _write(self, path: Path, blob: Mapping) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".write-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(blob, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _record_from(self, job_id: str, status: str, blob: dict | None) -> JobRecord:
        if blob is None:
            return JobRecord(job_id=job_id, status=status, point=None)
        return JobRecord(
            job_id=job_id,
            # Content status is the truth when a rename crashed
            # between the payload rewrite and the move.
            status=blob.get("status", status),
            point=_validate_point(blob.get("point")),
            worker_id=blob.get("worker_id"),
            attempts=int(blob.get("attempts") or 0),
            enqueued_at=blob.get("enqueued_at"),
            lease_expires_at=blob.get("lease_expires_at"),
            completed_at=blob.get("completed_at"),
            seconds=blob.get("seconds"),
            error=blob.get("error"),
            leased_at=blob.get("leased_at"),
            heartbeat_at=blob.get("heartbeat_at"),
        )

    # -- the queue contract --------------------------------------------------

    def submit(self, jobs: Sequence[Job]) -> int:
        if not jobs:
            return 0
        self.transactions += 1
        now = time.time()
        added = 0
        known = {job_id for job_id, _, _ in self._job_files()}
        for job in jobs:
            if job.job_id in known:
                continue
            self._write(
                self._path(job.job_id, "pending"),
                {
                    "schema": QUEUE_SCHEMA_VERSION,
                    "job_id": job.job_id,
                    "status": "pending",
                    "point": dict(job.point),
                    "attempts": 0,
                    "enqueued_at": now,
                },
            )
            known.add(job.job_id)
            added += 1
        return added

    def _transition(
        self, path_from: Path, blob: Mapping, status_to: str, job_id: str
    ) -> None:
        """Rewrite the payload in place, then rename to the new
        status.  A crash in between leaves content ahead of the name;
        reclaim() heals it by trusting the content."""
        self._write(path_from, blob)
        os.rename(path_from, self._path(job_id, status_to))

    def lease(
        self,
        worker_id: str,
        n: int = 1,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> list[Job]:
        if n < 1:
            raise ReproError(f"lease size must be >= 1, got {n}")
        self.transactions += 1
        clock = time.time() if now is None else now
        self.reclaim(now=clock)
        claimed: list[Job] = []
        for job_id, status, path in self._job_files():
            if len(claimed) >= n:
                break
            if status != "pending":
                continue
            claim_path = self._path(job_id, "claim")
            try:
                os.rename(path, claim_path)
            except OSError:
                continue  # another worker won this job
            try:
                os.utime(claim_path, times=(clock, clock))
            except OSError:  # pragma: no cover - claim raced away
                pass
            blob = self._read(claim_path)
            point = _validate_point(blob.get("point")) if blob else None
            if blob is None or point is None:
                self._transition(
                    claim_path,
                    {
                        **(blob or {"schema": QUEUE_SCHEMA_VERSION}),
                        "job_id": job_id,
                        "status": "failed",
                        "worker_id": None,
                        "lease_expires_at": None,
                        "error": "corrupt or mis-versioned payload",
                    },
                    "failed",
                    job_id,
                )
                continue
            attempts = int(blob.get("attempts") or 0)
            if attempts >= self.max_attempts:
                self._transition(
                    claim_path,
                    {
                        **blob,
                        "status": "failed",
                        "worker_id": None,
                        "lease_expires_at": None,
                        "error": blob.get("error")
                        or "lease attempts exhausted",
                    },
                    "failed",
                    job_id,
                )
                continue
            self._transition(
                claim_path,
                {
                    **blob,
                    "status": "leased",
                    "worker_id": worker_id,
                    "attempts": attempts + 1,
                    "lease_expires_at": clock + lease_seconds,
                    "leased_at": clock,
                    "heartbeat_at": clock,
                },
                "leased",
                job_id,
            )
            claimed.append(Job(job_id=job_id, point=point))
        if claimed:
            self.lease_grants += len(claimed)
            emit_event(
                "lease_grant",
                queue=self.name,
                worker=worker_id,
                jobs=len(claimed),
                lease_seconds=lease_seconds,
            )
        return claimed

    def complete(
        self,
        worker_id: str,
        job_id: str,
        *,
        seconds: float = 0.0,
        now: float | None = None,
    ) -> bool:
        self.transactions += 1
        clock = time.time() if now is None else now
        return self._complete_one(worker_id, job_id, seconds, clock)

    def _complete_one(
        self, worker_id: str, job_id: str, seconds: float, clock: float
    ) -> bool:
        path = self._path(job_id, "leased")
        blob = self._read(path)
        if blob is None or blob.get("worker_id") != worker_id:
            return False
        try:
            self._transition(
                path,
                {
                    **blob,
                    "status": "done",
                    "completed_at": clock,
                    "seconds": seconds,
                    "lease_expires_at": None,
                    "error": None,
                },
                "done",
                job_id,
            )
        except OSError:  # pragma: no cover - lease reclaimed mid-write
            return False
        return True

    def complete_many(
        self,
        worker_id: str,
        completions: Sequence[tuple[str, float]],
        *,
        now: float | None = None,
    ) -> int:
        # No transactions on a filesystem — the batch is still one
        # queue API round trip applied as per-job atomic renames.
        if not completions:
            return 0
        self.transactions += 1
        clock = time.time() if now is None else now
        done = 0
        for job_id, seconds in completions:
            if self._complete_one(worker_id, job_id, seconds, clock):
                done += 1
        return done

    def fail(
        self,
        worker_id: str,
        job_id: str,
        error: str = "",
        now: float | None = None,
    ) -> bool:
        self.transactions += 1
        return self._fail_one(worker_id, job_id, error)

    def _fail_one(self, worker_id: str, job_id: str, error: str) -> bool:
        path = self._path(job_id, "leased")
        blob = self._read(path)
        if blob is None or blob.get("worker_id") != worker_id:
            return False
        attempts = int(blob.get("attempts") or 0)
        status = "failed" if attempts >= self.max_attempts else "pending"
        try:
            self._transition(
                path,
                {
                    **blob,
                    "status": status,
                    "worker_id": None,
                    "lease_expires_at": None,
                    "leased_at": None,
                    "heartbeat_at": None,
                    "error": error or None,
                },
                status,
                job_id,
            )
        except OSError:  # pragma: no cover - lease reclaimed mid-write
            return False
        return True

    def fail_many(
        self,
        worker_id: str,
        failures: Sequence[tuple[str, str]],
        now: float | None = None,
    ) -> int:
        if not failures:
            return 0
        self.transactions += 1
        failed = 0
        for job_id, error in failures:
            if self._fail_one(worker_id, job_id, error):
                failed += 1
        return failed

    def heartbeat(
        self,
        worker_id: str,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        self.transactions += 1
        clock = time.time() if now is None else now
        return self._extend_leases(worker_id, None, lease_seconds, clock)

    def heartbeat_many(
        self,
        worker_id: str,
        job_ids: Sequence[str],
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        if not job_ids:
            return 0
        self.transactions += 1
        clock = time.time() if now is None else now
        return self._extend_leases(
            worker_id, set(job_ids), lease_seconds, clock
        )

    def _extend_leases(
        self,
        worker_id: str,
        job_ids: set[str] | None,
        lease_seconds: float,
        clock: float,
    ) -> int:
        """One directory scan extending the worker's leases —
        all of them, or only the named subset."""
        extended = 0
        for job_id, status, path in self._job_files():
            if status != "leased":
                continue
            if job_ids is not None and job_id not in job_ids:
                continue
            blob = self._read(path)
            if blob is None or blob.get("worker_id") != worker_id:
                continue
            self._write(
                path,
                {
                    **blob,
                    "lease_expires_at": clock + lease_seconds,
                    "heartbeat_at": clock,
                },
            )
            extended += 1
        return extended

    def reclaim(self, now: float | None = None) -> int:
        self.transactions += 1
        clock = time.time() if now is None else now
        reclaimed = 0
        for job_id, status, path in self._job_files():
            if status == "claim":
                # A claim older than the fallback lease belongs to a
                # worker that died between rename and stamp.
                try:
                    if path.stat().st_mtime < clock - _FALLBACK_LEASE_SECONDS:
                        os.rename(path, self._path(job_id, "pending"))
                        reclaimed += 1
                except OSError:  # pragma: no cover - claim resolved
                    pass
                continue
            if status != "leased":
                continue
            blob = self._read(path)
            if blob is None:
                continue  # unreadable; lease() will fail it on claim
            content_status = blob.get("status", status)
            if content_status in ("done", "failed", "pending"):
                # Heal a crashed transition: the content got ahead of
                # the filename; finish the rename it was owed.
                try:
                    os.rename(path, self._path(job_id, content_status))
                except OSError:  # pragma: no cover - raced away
                    pass
                continue
            expiry = blob.get("lease_expires_at")
            if expiry is None:
                try:
                    expiry = path.stat().st_mtime + _FALLBACK_LEASE_SECONDS
                except OSError:  # pragma: no cover - raced away
                    continue
            if expiry < clock:
                holder = blob.get("worker_id")
                try:
                    self._transition(
                        path,
                        {
                            **blob,
                            "status": "pending",
                            "worker_id": None,
                            "lease_expires_at": None,
                            "leased_at": None,
                            "heartbeat_at": None,
                        },
                        "pending",
                        job_id,
                    )
                except OSError:  # pragma: no cover - raced away
                    continue
                reclaimed += 1
                emit_event(
                    "lease_reclaim",
                    queue=self.name,
                    job_id=job_id,
                    from_worker=holder,
                    to_worker=None,
                )
        self.lease_reclaims += reclaimed
        return reclaimed

    def requeue(self, job_id: str, now: float | None = None) -> bool:
        self.transactions += 1
        for known_id, status, path in self._job_files():
            if known_id != job_id or status in ("pending", "claim"):
                continue
            blob = self._read(path)
            if blob is None:
                continue
            try:
                self._transition(
                    path,
                    {
                        **blob,
                        "status": "pending",
                        "worker_id": None,
                        "lease_expires_at": None,
                        "leased_at": None,
                        "heartbeat_at": None,
                        "completed_at": None,
                        "seconds": None,
                        "error": None,
                        "attempts": 0,
                    },
                    "pending",
                    job_id,
                )
            except OSError:  # pragma: no cover - raced away
                continue
            return True
        return False

    def purge(
        self,
        statuses: Sequence[str] = ("done", "failed"),
        older_than_seconds: float = 0.0,
        now: float | None = None,
    ) -> int:
        self.transactions += 1
        clock = time.time() if now is None else now
        cutoff = clock - max(older_than_seconds, 0.0)
        removed = 0
        for job_id, status, path in self._job_files():
            if status not in statuses:
                continue
            blob = self._read(path)
            stamp = None
            if blob is not None:
                stamp = blob.get("completed_at") or blob.get("enqueued_at")
            if stamp is None:
                try:
                    stamp = path.stat().st_mtime
                except OSError:  # pragma: no cover - raced away
                    continue
            if stamp >= cutoff:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced away
                continue
            removed += 1
        return removed

    def job(self, job_id: str) -> JobRecord | None:
        self.transactions += 1
        for known_id, status, path in self._job_files():
            if known_id == job_id:
                return self._record_from(job_id, status, self._read(path))
        return None

    def jobs(self) -> Iterator[JobRecord]:
        self.transactions += 1
        for job_id, status, path in self._job_files():
            yield self._record_from(job_id, status, self._read(path))

    def __len__(self) -> int:
        return len(self._job_files())

    def describe(self) -> dict:
        return {
            "queue": self.name,
            "directory": str(self.directory),
            "max_attempts": self.max_attempts,
        }


#: File suffixes that make :func:`resolve_queue` pick SQLite.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def resolve_queue(
    spec: "WorkQueue | str | os.PathLike",
    max_attempts: int = 3,
) -> WorkQueue:
    """Build a queue from a path spec, or pass a ready one through.

    The spec convention mirrors :func:`~repro.exec.store.resolve_store`
    so *one path* names the whole substrate: a ``.sqlite``/``.db``
    path keeps queue rows in that database (beside the store's
    ``evaluations`` table), any other path is treated as a store
    directory whose queue lives in its ``.queue/`` subdirectory.
    """
    if isinstance(spec, WorkQueue):
        return spec
    path = Path(spec)
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return SQLiteWorkQueue(path, max_attempts=max_attempts)
    return FileWorkQueue(path / QUEUE_SUBDIR, max_attempts=max_attempts)


def queue_for_store(store: CacheStore, max_attempts: int = 3) -> WorkQueue:
    """The work queue co-located with a persistent store."""
    # Look through resilient/faulty wrappers: co-location is decided
    # by the real files underneath.
    while isinstance(getattr(store, "inner", None), CacheStore):
        store = store.inner
    if isinstance(store, SQLiteStore):
        return SQLiteWorkQueue(store.path, max_attempts=max_attempts)
    if isinstance(store, FileStore):
        return FileWorkQueue(
            store.directory / QUEUE_SUBDIR, max_attempts=max_attempts
        )
    raise ReproError(
        f"no work queue can be co-located with a {store.name!r} store; "
        "distributed evaluation needs a persistent (file or SQLite) store"
    )


class DistributedJobHandle(JobHandle):
    """A submitted batch resolving through the shared store.

    ``result()`` polls the store for the batch's fingerprints and, in
    cooperate mode, leases and evaluates queued jobs while it waits —
    the submitter is then just another worker, so a study completes
    even with zero external workers attached, and N submitters of the
    same study split its points between them.
    """

    def __init__(
        self,
        backend: "DistributedBackend",
        evaluate: Evaluator,
        fingerprints: Sequence[str],
        points: Sequence[Mapping[str, float]],
    ):
        self._backend = backend
        self._evaluate = evaluate
        self._fingerprints = list(fingerprints)
        self._point_for = {
            fp: dict(point)
            for fp, point in zip(self._fingerprints, points)
        }
        self._resolved: dict[str, PointResult] = {}
        self._results: list[PointResult] | None = None

    def done(self) -> bool:
        return self._results is not None

    def collected(self) -> bool:
        return self._results is not None

    def result(self) -> list[PointResult]:
        if self._results is not None:
            return self._results
        backend = self._backend
        unresolved = set(self._point_for) - set(self._resolved)
        deadline = (
            time.monotonic() + backend.timeout
            if backend.timeout is not None
            else None
        )
        fallback_at = (
            time.monotonic() + backend.fallback_after
            if backend.fallback_after is not None
            else None
        )
        idle_sleeps = 0
        while unresolved:
            if backend.queue_down:
                # The queue proved unreachable (here or at submit):
                # there is nothing to wait on — evaluate locally.
                self._evaluate_degraded(unresolved)
                break
            progress = self._poll_store(unresolved)
            if not unresolved:
                break
            if backend.cooperate:
                progress |= self._work_one_lease(unresolved)
            else:
                backend._queue_call(backend.queue.reclaim)
            if progress:
                # The timeout bounds *stalls*, not total study time:
                # as long as points keep landing, a long study must
                # not trip it — re-arm on every bit of progress.
                idle_sleeps = 0
                now = time.monotonic()
                if backend.timeout is not None:
                    deadline = now + backend.timeout
                if backend.fallback_after is not None:
                    fallback_at = now + backend.fallback_after
                continue
            # Only stalled ticks pay for the failure scan; a steadily
            # progressing batch never touches it, and a terminally
            # failed job stalls its fingerprint so the scan is
            # guaranteed to see it eventually.
            self._check_failures(unresolved)
            now = time.monotonic()
            if fallback_at is not None and now > fallback_at:
                # Nobody — local or remote — is moving the batch.
                # Unattended completion was asked for: stop waiting
                # on the fleet and finish the points ourselves.
                backend._warn_degraded(
                    f"no progress for {backend.fallback_after:.0f}s"
                )
                self._evaluate_degraded(unresolved)
                break
            if deadline is not None and now > deadline:
                missing = sorted(fp[:16] for fp in unresolved)
                raise ReproError(
                    f"distributed evaluation stalled for "
                    f"{backend.timeout:.0f}s with {len(unresolved)} "
                    f"points unresolved ({missing[:4]}...); are any "
                    f"repro-worker processes attached to the queue? "
                    f"[{backend.queue_snapshot()}]"
                )
            # Adaptive backoff: poll fast while points are landing
            # (idle_sleeps resets on progress), double the sleep per
            # idle tick up to poll_max so a quiet wait stops burning
            # store reads without missing a late worker by much.
            backend.poll_sleeps += 1
            time.sleep(
                min(
                    backend.poll_interval * (2.0 ** min(idle_sleeps, 16)),
                    backend.poll_max,
                )
            )
            idle_sleeps += 1
        self._results = [
            self._resolved[fp] for fp in self._fingerprints
        ]
        return self._results

    def _evaluate_degraded(self, unresolved: set[str]) -> None:
        """Finish the batch in-process: the distributed substrate is
        unavailable, but the evaluator is right here and results must
        not be.  Store persists stay best-effort (shared-cache
        citizenship); queue bookkeeping is skipped — a pending job a
        recovered worker later evaluates just persists an identical
        payload, which is the substrate's normal dedup story."""
        backend = self._backend
        for fp in list(unresolved):
            responses = backend._store_peek(fp)
            seconds = 0.0
            if responses is None:
                started = time.perf_counter()
                responses = dict(self._evaluate(self._point_for[fp]))
                seconds = time.perf_counter() - started
                backend.degraded_evaluations += 1
                backend._store_persist(fp, responses)
            self._resolved[fp] = (responses, seconds)
            unresolved.discard(fp)

    def _poll_store(self, unresolved: set[str]) -> bool:
        """Collect the fingerprints the store can now answer.

        One batched ``load_many`` answers the whole unresolved set —
        a peek per fingerprint would cost O(unresolved) store round
        trips per poll tick.  The per-point ``job()`` lookup for
        evaluation seconds happens once per point, on the tick it
        lands, never per poll.
        """
        backend = self._backend
        landed = backend._store_load_many(list(unresolved))
        seconds_for: dict[str, float] = {}
        if len(landed) > 1:
            # Several points landed on one tick: one jobs() scan
            # answers every seconds lookup instead of a queue round
            # trip per landed fingerprint.
            listed = backend._queue_call(
                lambda: list(backend.queue.jobs())
            )
            for record in listed or []:
                if record.seconds is not None:
                    seconds_for[record.job_id] = record.seconds
        elif landed:
            (fp,) = landed
            record = backend._queue_call(backend.queue.job, fp)
            if record is not None and record.seconds is not None:
                seconds_for[fp] = record.seconds
        for fp, responses in landed.items():
            self._resolved[fp] = (responses, seconds_for.get(fp, 0.0))
            unresolved.discard(fp)
        return bool(landed)

    def _work_one_lease(self, unresolved: set[str]) -> bool:
        """Lease and evaluate a batch of jobs (cooperate mode)."""
        backend = self._backend
        jobs = backend._queue_call(
            backend.queue.lease,
            backend.worker_id,
            n=backend.batch,
            lease_seconds=backend.lease_seconds,
        )
        if jobs is None:
            return False
        # A reclaimed lease may hand us jobs somebody already
        # finished (their lease expired *after* they persisted).
        # The store is the source of truth: one batched read answers
        # the whole lease, and nothing is ever evaluated twice.
        known = backend._store_load_many([job.job_id for job in jobs])
        done: list[tuple[str, float]] = []
        to_persist: list[tuple[str, Mapping[str, float]]] = []
        for job in jobs:
            responses = known.get(job.job_id)
            if responses is not None:
                done.append((job.job_id, 0.0))
                if job.job_id in unresolved:
                    self._resolved[job.job_id] = (responses, 0.0)
                    unresolved.discard(job.job_id)
                continue
            started = time.perf_counter()
            try:
                responses = dict(self._evaluate(job.point))
            except Exception as error:
                # Land the siblings evaluated so far before surfacing
                # the failure: their results exist and the store is
                # the substrate's source of truth for dedup.
                backend._store_persist_many(to_persist)
                backend._queue_call(
                    backend.queue.fail,
                    backend.worker_id,
                    job.job_id,
                    error=str(error),
                )
                raise
            seconds = time.perf_counter() - started
            to_persist.append((job.job_id, responses))
            done.append((job.job_id, seconds))
            if job.job_id in unresolved:
                self._resolved[job.job_id] = (responses, seconds)
                unresolved.discard(job.job_id)
        # One batched persist lands the whole lease — the per-job
        # variant cost one store round trip per evaluated point.
        backend._store_persist_many(to_persist)
        if done:
            backend._queue_call(
                backend.queue.complete_many,
                backend.worker_id,
                done,
            )
        return bool(jobs)

    def _check_failures(self, unresolved: set[str]) -> None:
        """Surface terminally failed jobs; re-enqueue vanished ones.

        One ``jobs()`` scan answers every unresolved fingerprint —
        per-fingerprint ``job()`` lookups would make each stalled
        tick O(queue size x unresolved) directory/table scans.
        """
        backend = self._backend
        listed = backend._queue_call(
            lambda: list(backend.queue.jobs())
        )
        if listed is None:
            return
        records = {record.job_id: record for record in listed}
        for fp in list(unresolved):
            record = records.get(fp)
            if record is None:
                # Purged (or never landed): the batch still owns the
                # point, so put it back rather than wait forever.
                backend._queue_call(
                    backend.queue.submit, [Job(fp, self._point_for[fp])]
                )
                continue
            if record.status == "failed":
                raise ReproError(
                    f"distributed job {fp[:16]}... failed after "
                    f"{record.attempts} attempts: "
                    f"{record.error or 'unknown error'}"
                )


class DistributedBackend(EvaluationBackend):
    """Evaluate through a shared store + durable work queue.

    ``submit`` answers what the store already knows, enqueues the
    misses (deduplicated against concurrent submitters by job id),
    and returns a handle that assembles ordered, bit-identical
    results as workers publish them.  Workers are plain
    ``repro-worker`` processes (:mod:`repro.exec.worker`) pointed at
    the same path — or, in cooperate mode (the default), the
    submitting process itself.

    Args:
        store: the shared :class:`~repro.exec.store.CacheStore`
            results travel through — a ready instance (caller-owned)
            or a path spec (resolved and owned here).  Must be
            persistent (file or SQLite).
        queue: the work queue — a ready instance (caller-owned), a
            path spec, or None to co-locate one with the store.
        cooperate: lease and evaluate jobs locally while waiting, so
            the submitter is itself a worker.  Set False to make the
            submitter wait purely on external workers.
        lease_seconds: lease TTL for cooperative/recovered leases.
        poll_interval: seconds between store polls when idle.
        timeout: give up after this many seconds *without progress*
            — the deadline re-arms every time a point lands, so it
            bounds stalls, never total study time (None waits
            forever).
        batch: jobs per cooperative lease.
        worker_id: identity for cooperative leases (default: a
            host/pid-unique string).
        max_attempts: lease attempts before a job fails terminally.
        retry: :class:`~repro.exec.resilience.RetryPolicy` applied to
            every queue operation (None: the default policy).
        fallback: degrade to *in-process* evaluation instead of
            raising when the queue is unreachable (submit or lease
            keeps failing past the retry budget).  The study then
            completes without distribution and reports how many
            points took that path in :attr:`degraded_evaluations`.
        fallback_after: seconds without *any* progress (no point
            landing in the store, no cooperative lease) before the
            handle stops waiting on workers and evaluates the
            remaining points in-process.  None (default) keeps the
            classic behaviour: wait until ``timeout`` and raise a
            stall error.  Set it when unattended completion matters
            more than distribution — e.g. an overnight campaign that
            must survive its whole worker fleet dying.
    """

    name = "distributed"

    #: Results come back already persisted in :attr:`store` (workers
    #: and cooperative leases publish through it); an engine caching
    #: into the same store can skip its own persist.
    publishes_results = True

    def __init__(
        self,
        store: CacheStore | str | os.PathLike,
        queue: WorkQueue | str | os.PathLike | None = None,
        *,
        cooperate: bool = True,
        lease_seconds: float = 60.0,
        poll_interval: float = 0.05,
        timeout: float | None = 600.0,
        batch: int = 1,
        worker_id: str | None = None,
        max_attempts: int = 3,
        retry: "RetryPolicy | None" = None,
        fallback: bool = True,
        fallback_after: float | None = None,
    ):
        super().__init__()
        if batch < 1:
            raise ReproError(f"batch must be >= 1, got {batch}")
        if lease_seconds <= 0:
            raise ReproError(
                f"lease_seconds must be > 0, got {lease_seconds}"
            )
        if fallback_after is not None and fallback_after <= 0:
            raise ReproError(
                f"fallback_after must be > 0, got {fallback_after}"
            )
        self._owns_store = not isinstance(store, CacheStore)
        self.store = resolve_store(store)
        # Resilient/faulty wrappers expose the wrapped store as
        # .inner — persistence is a property of what is underneath.
        innermost = self.store
        while isinstance(getattr(innermost, "inner", None), CacheStore):
            innermost = innermost.inner
        if not isinstance(innermost, (FileStore, SQLiteStore)):
            raise ReproError(
                "the distributed backend needs a persistent store "
                f"(file or SQLite), got {self.store.name!r}"
            )
        self._owns_queue = not isinstance(queue, WorkQueue)
        if queue is None:
            self.queue = queue_for_store(
                self.store, max_attempts=max_attempts
            )
        else:
            self.queue = resolve_queue(queue, max_attempts=max_attempts)
        self.cooperate = cooperate
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        #: Ceiling for the adaptive idle backoff: polls start at
        #: ``poll_interval`` and double while nothing lands, capped
        #: here so a worker finishing late is still noticed quickly.
        self.poll_max = max(
            self.poll_interval, min(self.poll_interval * 20.0, 1.0)
        )
        self.timeout = timeout
        self.batch = batch
        self.worker_id = worker_id or default_worker_id()
        if retry is None:
            from repro.exec.resilience import DEFAULT_RETRY

            retry = DEFAULT_RETRY
        self.retry = retry
        self.fallback = fallback
        self.fallback_after = fallback_after
        #: Points evaluated in-process because the substrate was
        #: unavailable (queue unreachable, or no progress within
        #: ``fallback_after``).  Zero on a healthy run.
        self.degraded_evaluations = 0
        #: Idle sleeps taken while waiting for results to land — the
        #: per-layer cost of polling, made observable so benchmarks
        #: can gate the adaptive backoff.
        self.poll_sleeps = 0
        #: Latched once the queue proves unreachable; every handle
        #: then degrades immediately instead of re-paying the retry
        #: budget per call.
        self.queue_down = False
        self._warned_degraded = False
        self._warned_store = False

    # -- guarded substrate access ----------------------------------------------

    def _warn_degraded(self, why: str) -> None:
        if self._warned_degraded:
            return
        self._warned_degraded = True
        warnings.warn(
            f"distributed substrate degraded ({why}); evaluating "
            "remaining points in-process — results are unaffected, "
            "but this submitter is no longer distributing work",
            RuntimeWarning,
            stacklevel=3,
        )

    def _queue_call(self, fn, *args, **kwargs):
        """One queue op under the retry policy.

        Returns None — after latching :attr:`queue_down` — when the
        queue stays unreachable and :attr:`fallback` allows degrading;
        re-raises otherwise.
        """
        if self.queue_down:
            return None
        try:
            return self.retry.call(fn, *args, **kwargs)
        except (ReproError, sqlite3.Error, OSError) as error:
            if not self.fallback:
                raise
            self.queue_down = True
            self._warn_degraded(f"queue unreachable: {error}")
            return None

    def _store_peek(self, fingerprint: str):
        """Best-effort store peek: an unreadable store is a miss."""
        try:
            return self.retry.call(self.store.peek, fingerprint)
        # repro-lint: allow[REP105] best-effort peek; transients already retried by RetryPolicy, an unreadable store is a cache miss
        except Exception:
            return None

    def _store_load_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        """Best-effort batched read: an unreadable store answers
        nothing and the caller treats every fingerprint as a miss."""
        if not fingerprints:
            return {}
        try:
            return self.retry.call(self.store.load_many, list(fingerprints))
        # repro-lint: allow[REP105] best-effort batched read; transients already retried by RetryPolicy, an unreadable store is a cache miss
        except Exception:
            return {}

    def _store_persist_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        """Best-effort batched persist: one store round trip lands a
        whole lease of results.  A failing batch falls back to
        per-entry persists so one unlandable payload never costs the
        durability of its siblings."""
        if not entries:
            return
        try:
            self.retry.call(self.store.persist_many, entries)
            return
        # repro-lint: allow[REP105] batch persist transients already retried by RetryPolicy; residual failure falls back to per-entry persists, which carry their own one-time warning
        except Exception:
            pass
        for fingerprint, responses in entries:
            self._store_persist(fingerprint, responses)

    def _store_persist(self, fingerprint: str, responses) -> None:
        """Best-effort persist: the caller holds the responses, so a
        failing store costs durability, never the result."""
        try:
            self.retry.call(self.store.persist, fingerprint, responses)
        # repro-lint: allow[REP105] persist transients already retried by RetryPolicy; residual failure degrades durability with a one-time warning, the caller still holds the responses
        except Exception as error:
            if not self._warned_store:
                self._warned_store = True
                warnings.warn(
                    f"cache store persist failing ({error}); results "
                    "are held in memory for this study but are not "
                    "being shared through the store",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def queue_snapshot(self) -> str:
        """One-line queue state for stall post-mortems."""
        try:
            stats = self.queue.stats()
            now = time.time()
            oldest: float | None = None
            for record in self.queue.jobs():
                if record.status != "leased":
                    continue
                expires = record.lease_expires_at
                if expires is None:
                    continue
                # A lease's age is measured against its horizon:
                # negative margin means it has already expired.
                age = now - expires
                if oldest is None or age > oldest:
                    oldest = age
            lease = (
                "no leases outstanding"
                if oldest is None
                else (
                    f"oldest lease expired {oldest:.1f}s ago"
                    if oldest >= 0
                    else f"oldest lease expires in {-oldest:.1f}s"
                )
            )
            return (
                f"queue snapshot: pending={stats.pending} "
                f"leased={stats.leased} failed={stats.failed}, {lease}"
            )
        # repro-lint: allow[REP105] diagnostics only; a stall post-mortem snapshot must never raise over the stall it is describing
        except Exception as error:  # pragma: no cover - diagnostics only
            return f"queue snapshot unavailable: {error}"

    def _enqueue_misses(
        self,
        fingerprints: Sequence[str],
        points: Sequence[Mapping[str, float]],
    ) -> int:
        """Enqueue what the store cannot already answer.

        One batched ``load_many`` replaces a peek per fingerprint;
        the queue's job-id dedup absorbs concurrent submitters racing
        the same study.  Returns how many jobs were newly enqueued.
        """
        known = self._store_load_many(list(dict.fromkeys(fingerprints)))
        to_enqueue: dict[str, Mapping[str, float]] = {}
        for fp, point in zip(fingerprints, points):
            if fp in to_enqueue or fp in known:
                continue
            to_enqueue[fp] = point
        if not to_enqueue:
            return 0
        submitted = self._queue_call(
            self.queue.submit,
            [Job(fp, dict(point)) for fp, point in to_enqueue.items()],
        )
        return submitted if submitted is not None else 0

    def _submit(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> JobHandle:
        if fingerprints is None:
            from repro.exec.cache import point_fingerprint

            fingerprints = [point_fingerprint(point) for point in points]
        self._enqueue_misses(fingerprints, points)
        return DistributedJobHandle(self, evaluate, fingerprints, points)

    def prefetch(
        self,
        evaluate: Evaluator,
        points: Sequence[Mapping[str, float]],
        *,
        fingerprints: Sequence[str] | None = None,
    ) -> int:
        """Enqueue store-misses without tracking a handle.

        Fire-and-forget speculation: workers (or a later cooperating
        submit of the same points) evaluate and publish through the
        store, and whoever submits the points for real collects them
        from there.  Returns how many jobs were newly enqueued.
        """
        if fingerprints is None:
            from repro.exec.cache import point_fingerprint

            fingerprints = [point_fingerprint(point) for point in points]
        return self._enqueue_misses(fingerprints, points)

    @property
    def queue_transactions(self) -> int:
        """Queue API calls issued against this backend's queue."""
        return int(getattr(self.queue, "transactions", 0))

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "cooperate": self.cooperate,
            "lease_seconds": self.lease_seconds,
            "batch": self.batch,
            "worker_id": self.worker_id,
            "fallback": self.fallback,
            "fallback_after": self.fallback_after,
            "degraded_evaluations": self.degraded_evaluations,
            "poll_sleeps": self.poll_sleeps,
            "queue_transactions": self.queue_transactions,
            "queue_down": self.queue_down,
            "retry": self.retry.describe(),
            "store": self.store.describe(),
            "queue": self.queue.describe(),
        }

    def close(self) -> None:
        if self._owns_queue:
            self.queue.close()
        if self._owns_store:
            self.store.close()
