"""Lifecycle management for evaluation stores.

A long-lived deployment accumulates persisted evaluations forever:
every study appends blobs, nothing ever removes them.  This module is
the store-level lifecycle layer the ROADMAP names — garbage collection
under explicit budgets, compaction of the space dead entries leave
behind, integrity verification, and store-to-store transfer so caches
can be shipped between hosts and unioned.

Everything here works through the generic
:class:`~repro.exec.store.CacheStore` metadata surface
(:meth:`~repro.exec.store.CacheStore.entries`,
:meth:`~repro.exec.store.CacheStore.verify`,
:meth:`~repro.exec.store.CacheStore.compact`), so any future store —
a distributed backend leasing work against a shared cache — inherits
GC, ``repro-cache`` tooling and the contract tests for free.

Dropping an entry is always *safe* (evaluations are deterministic;
the engine re-simulates a miss), so eviction policy is purely an
efficiency question: :data:`POLICIES` maps policy names to sort keys
over :class:`~repro.exec.store.EntryMeta`, and
:func:`register_policy` accepts new ones.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ReproError
from repro.exec.store import (
    CacheStore,
    CompactionReport,
    EntryMeta,
    VerifyReport,
    resolve_store,
)
from repro.obs.catalog import instrument
from repro.obs.events import emit_event

__all__ = [
    "GCBudget",
    "GCReport",
    "TransferReport",
    "POLICIES",
    "register_policy",
    "collect",
    "compact",
    "verify",
    "merge_stores",
    "export_store",
]


def _age_reference(meta: EntryMeta) -> float:
    """The timestamp TTL and LRU ordering reason about: last use,
    falling back to creation; entries with neither (a store that
    cannot say) look infinitely old, so bounded deployments converge
    instead of hoarding unaccountable blobs."""
    stamp = meta.last_used_at or meta.created_at
    return stamp if stamp is not None else 0.0


#: Eviction policies: name -> sort key over :class:`EntryMeta`.
#: Lower keys evict first.  ``lru`` orders by last use (falling back
#: to creation), ``oldest`` strictly by creation time.
POLICIES: dict[str, Callable[[EntryMeta], float]] = {
    "lru": _age_reference,
    "oldest": lambda meta: meta.created_at or 0.0,
}


def register_policy(
    name: str, key: Callable[[EntryMeta], float]
) -> None:
    """Add an eviction policy (sort key over entry metadata; lower
    evicts first)."""
    POLICIES[name] = key


@dataclass
class GCBudget:
    """What a store is allowed to hold.

    Any combination of bounds may be set; GC enforces the TTL first,
    then evicts by ``policy`` until the count and byte budgets hold.
    A budget with no bounds set is legal and collects nothing.

    Attributes:
        max_bytes: approximate byte ceiling over all entries.
        max_age_seconds: TTL — entries unused for longer are dropped
            (age counts from last use, falling back to creation).
        max_entries: entry-count ceiling.
        policy: eviction order for the size/count budgets — a key of
            :data:`POLICIES` (``"lru"`` or ``"oldest"`` out of the
            box).
    """

    max_bytes: int | None = None
    max_age_seconds: float | None = None
    max_entries: int | None = None
    policy: str = "lru"

    def __post_init__(self) -> None:
        for name in ("max_bytes", "max_entries"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ReproError(f"{name} must be >= 0, got {value}")
        if self.max_age_seconds is not None and self.max_age_seconds < 0:
            raise ReproError(
                f"max_age_seconds must be >= 0, got {self.max_age_seconds}"
            )

    @property
    def bounded(self) -> bool:
        """Whether any limit is actually set."""
        return (
            self.max_bytes is not None
            or self.max_age_seconds is not None
            or self.max_entries is not None
        )

    @classmethod
    def of(cls, spec: "GCBudget | Mapping | None") -> "GCBudget | None":
        """Coerce a budget spec — a ready budget, a kwargs mapping
        (handy at API boundaries like ``cache_gc={"max_bytes": ...}``),
        or None."""
        if spec is None or isinstance(spec, GCBudget):
            return spec
        if isinstance(spec, Mapping):
            return cls(**spec)
        raise ReproError(
            f"cache_gc must be a GCBudget, a mapping of its fields, "
            f"or None; got {type(spec)!r}"
        )


@dataclass
class GCReport:
    """What one garbage-collection pass did.

    Attributes:
        scanned: entries examined.
        ttl_evicted: entries dropped by the age bound.
        budget_evicted: entries dropped to satisfy the byte/count
            bounds.
        bytes_reclaimed: approximate bytes freed.
        entries_after / bytes_after: store occupancy when the pass
            finished.
        victims: evicted fingerprints, in eviction order (populated
            on dry runs too, where nothing was actually dropped).
        dry_run: planned only; the store was not modified.
    """

    policy: str
    scanned: int = 0
    ttl_evicted: int = 0
    budget_evicted: int = 0
    bytes_reclaimed: int = 0
    entries_after: int = 0
    bytes_after: int = 0
    victims: list[str] = field(default_factory=list)
    dry_run: bool = False

    @property
    def evicted(self) -> int:
        return self.ttl_evicted + self.budget_evicted

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "scanned": self.scanned,
            "evicted": self.evicted,
            "ttl_evicted": self.ttl_evicted,
            "budget_evicted": self.budget_evicted,
            "bytes_reclaimed": self.bytes_reclaimed,
            "entries_after": self.entries_after,
            "bytes_after": self.bytes_after,
            "dry_run": self.dry_run,
            # The whole point of --dry-run --json is reviewing the
            # eviction plan, so the victims ride along.
            "victims": list(self.victims),
        }


def collect(
    store: CacheStore,
    budget: GCBudget | Mapping | None,
    *,
    now: float | None = None,
    dry_run: bool = False,
) -> GCReport:
    """Garbage-collect a store down to a budget.

    TTL eviction runs first (an expired entry is dead regardless of
    space), then the byte/count budgets evict in policy order until
    both hold.  Evictions are issued through ``store.discard`` —
    loads never race a half-deleted entry — and are counted in
    ``store.stats.gc_evictions`` / ``bytes_reclaimed`` (on top of the
    ``invalidations`` every discard records).

    Args:
        store: the store to collect.
        budget: bounds to enforce (None or an unbounded budget is a
            no-op).
        now: clock override for tests.
        dry_run: plan only — report victims without dropping them.
    """
    budget = GCBudget.of(budget)
    report = GCReport(policy=budget.policy if budget else "lru")
    metas = list(store.entries()) if budget and budget.bounded else []
    report.scanned = len(metas)
    if budget is None or not budget.bounded:
        report.entries_after = len(store)
        report.bytes_after = store.total_bytes()
        return report
    if budget.policy not in POLICIES:
        raise ReproError(
            f"unknown eviction policy {budget.policy!r}; "
            f"pick from {sorted(POLICIES)} or register_policy() it"
        )
    key = POLICIES[budget.policy]
    clock = time.time() if now is None else now
    report.dry_run = dry_run

    survivors: list[EntryMeta] = []
    ttl_victims: list[EntryMeta] = []
    if budget.max_age_seconds is not None:
        cutoff = clock - budget.max_age_seconds
        for meta in metas:
            if _age_reference(meta) < cutoff:
                ttl_victims.append(meta)
            else:
                survivors.append(meta)
    else:
        survivors = list(metas)

    # Policy order, oldest-key first; then pop from the front until
    # the count and byte ceilings both hold.
    survivors.sort(key=key)
    budget_victims: list[EntryMeta] = []
    remaining_bytes = sum(meta.size_bytes for meta in survivors)
    remaining = len(survivors)
    index = 0
    while index < len(survivors) and (
        (budget.max_entries is not None and remaining > budget.max_entries)
        or (budget.max_bytes is not None and remaining_bytes > budget.max_bytes)
    ):
        victim = survivors[index]
        budget_victims.append(victim)
        remaining -= 1
        remaining_bytes -= victim.size_bytes
        index += 1

    for group, counter in ((ttl_victims, "ttl"), (budget_victims, "budget")):
        for meta in group:
            report.victims.append(meta.fingerprint)
            if not dry_run and store.discard(meta.fingerprint):
                report.bytes_reclaimed += meta.size_bytes
            if counter == "ttl":
                report.ttl_evicted += 1
            else:
                report.budget_evicted += 1
    if not dry_run:
        store.stats.gc_evictions += report.evicted
        store.stats.bytes_reclaimed += report.bytes_reclaimed
        report.entries_after = len(store)
        report.bytes_after = store.total_bytes()
        instrument("repro_gc_runs_total").inc()
        emit_event(
            "gc",
            store=store.name,
            policy=report.policy,
            evicted=report.evicted,
            bytes_reclaimed=report.bytes_reclaimed,
        )
    else:
        report.entries_after = remaining
        report.bytes_after = remaining_bytes
    return report


def compact(
    store: CacheStore, *, grace_seconds: float = 60.0
) -> CompactionReport:
    """Reclaim dead space: VACUUM + WAL checkpoint for SQLite, sweep
    of stale temp/partial files and zero-byte orphans for the file
    store, a no-op for memory.  Thin functional wrapper over
    :meth:`CacheStore.compact` for symmetry with :func:`collect`."""
    return store.compact(grace_seconds=grace_seconds)


def verify(store: CacheStore, *, repair: bool = False) -> VerifyReport:
    """Integrity-scan a store; see :meth:`CacheStore.verify`."""
    return store.verify(repair=repair)


@dataclass
class TransferReport:
    """What a merge/export moved.

    Attributes:
        scanned: valid source entries considered.
        copied: entries written into the destination (new entries
            plus newest-wins overwrites).
        skipped: collisions where the destination entry was at least
            as new (left untouched).
        bytes_copied: approximate bytes written.
    """

    scanned: int = 0
    copied: int = 0
    skipped: int = 0
    bytes_copied: int = 0

    def as_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "copied": self.copied,
            "skipped": self.skipped,
            "bytes_copied": self.bytes_copied,
        }


def merge_stores(dest: CacheStore, source: CacheStore) -> TransferReport:
    """Union a source store's valid entries into a destination.

    Collisions resolve newest-wins on creation time (ties keep the
    destination — re-writing an identical deterministic payload buys
    nothing).  Only entries the source itself validates are copied —
    ``items()`` already refuses corrupt, mis-versioned or mismatched
    blobs, so a bad source entry can never be laundered into a
    destination that would then serve it.  Entry metadata (creation
    time, last use, hit counts) travels with the blob, so TTL GC on
    the destination still sees the entry's true age.
    """
    if dest is source:
        raise ReproError("cannot merge a store into itself")
    report = TransferReport()
    for fingerprint, responses in source.items():
        report.scanned += 1
        meta = source.entry_meta(fingerprint)
        if fingerprint in dest:
            existing = dest.entry_meta(fingerprint)
            if (existing.created_at or 0.0) >= (
                (meta.created_at or 0.0) if meta else 0.0
            ):
                report.skipped += 1
                continue
        dest.persist(fingerprint, responses, meta=meta)
        report.copied += 1
        report.bytes_copied += meta.size_bytes if meta else 0
    return report


def export_store(
    source: CacheStore, dest: CacheStore | str | os.PathLike
) -> TransferReport:
    """Copy every valid entry of ``source`` into ``dest`` (a ready
    store or a path spec); see :meth:`CacheStore.export_to`."""
    return source.export_to(dest)
