"""Resilience primitives for the store/queue/worker substrate.

Fault handling used to be scattered — lease TTLs in the queue, busy
timeouts in the store, ad-hoc ``try/except`` in the worker.  This
module centralizes the three primitives everything else composes:

* :class:`RetryPolicy` — exponential backoff with *seeded,
  deterministic* jitter and max-attempts / max-elapsed budgets.
  Transient failures (see :func:`repro.errors.is_transient`) are
  retried; terminal ones propagate immediately.  Determinism matters
  here the same way it does for simulations: a chaos run under a
  seeded :class:`~repro.exec.faults.FaultPlan` must replay its retry
  schedule exactly.
* :class:`CircuitBreaker` — a per-component trip switch.  After
  ``failure_threshold`` consecutive terminal failures the breaker
  opens and calls fail fast with
  :class:`~repro.errors.CircuitOpenError` instead of each paying the
  full failure latency; after ``reset_after`` seconds one probe call
  is allowed through (half-open) and a success closes it again.
* :class:`ResilientStore` / :class:`ResilientQueue` — transparent
  wrappers that apply a retry policy (and, for the store, a breaker
  plus graceful degradation) to every substrate call.  A persistently
  failing store degrades to a warn-once **memory overlay** mid-study
  instead of aborting: every persist lands in the overlay, loads are
  answered from it, and when the breaker's probe finds the real store
  healthy again the overlay is flushed back — results are never lost,
  only their persistence is deferred.

The wrappers delegate unknown attributes to the wrapped object, so
store-specific surface (``directory``, ``path``, ``partial_files``)
keeps working and the whole store/queue behavioural contract holds
through them (pinned by the fault-injection contract suites).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from random import Random
from typing import Callable, Iterator, Mapping, Sequence

from repro.errors import (
    CircuitOpenError,
    ReproError,
    is_transient,
)
from repro.exec.store import CacheStore, EntryMeta, MemoryStore, VerifyReport
from repro.exec.queue import Job, JobRecord, WorkQueue
from repro.obs.catalog import track_resilience
from repro.obs.events import emit_event


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded deterministic jitter.

    Attributes:
        max_attempts: total tries (first call included); 1 disables
            retrying.
        base_delay: sleep after the first failed attempt, seconds.
        multiplier: backoff growth per further attempt.
        max_delay: ceiling on any single sleep.
        max_elapsed: budget on *total* time spent inside
            :meth:`call` (sleeps included); once exceeded the last
            error propagates even if attempts remain.  None = no
            time budget.
        jitter: fraction of each delay randomized away (0.25 means
            each sleep is uniform in ``[0.75 d, d]``).  Jitter is
            drawn from a :class:`random.Random` seeded per
            :meth:`call`, so identical seeds replay identical
            schedules — chaos runs are reproducible.
        seed: jitter seed.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    max_elapsed: float | None = 30.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    def delays(self) -> Iterator[float]:
        """The deterministic sleep schedule between attempts."""
        rng = Random(self.seed)
        delay = self.base_delay
        for _ in range(max(self.max_attempts - 1, 0)):
            capped = min(delay, self.max_delay)
            yield capped * (1.0 - self.jitter * rng.random())
            delay *= self.multiplier

    def call(
        self,
        fn: Callable,
        *args,
        classify: Callable[[BaseException], bool] = is_transient,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Callable[[int, BaseException], None] | None = None,
        **kwargs,
    ):
        """Run ``fn``, retrying transient failures on the schedule.

        ``classify`` decides retryability (default
        :func:`repro.errors.is_transient`); terminal errors propagate
        from the failing attempt untouched.  ``on_retry(attempt,
        error)`` is invoked before each sleep — wrappers use it to
        count masked transients.
        """
        started = clock()
        schedule = self.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(*args, **kwargs)
            except BaseException as error:
                if not classify(error):
                    raise
                delay = next(schedule, None)
                if delay is None:
                    raise
                if (
                    self.max_elapsed is not None
                    and clock() - started + delay > self.max_elapsed
                ):
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                sleep(delay)

    def describe(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "max_elapsed": self.max_elapsed,
            "jitter": self.jitter,
            "seed": self.seed,
        }


#: Retry policy for substrate traffic on the hot path: a few quick
#: attempts, bounded well under any lease TTL.
DEFAULT_RETRY = RetryPolicy()

#: Breaker states, in the conventional nomenclature.
BREAKER_STATES = ("closed", "open", "half-open")


class CircuitBreaker:
    """Trip switch over one failing component.

    Closed (normal): calls flow, consecutive failures are counted.
    Open: calls raise :class:`~repro.errors.CircuitOpenError`
    immediately.  Half-open: after ``reset_after`` seconds one probe
    call is allowed; success closes the breaker, failure re-opens it
    for another ``reset_after``.

    Args:
        failure_threshold: consecutive failures that open the breaker.
        reset_after: seconds the breaker stays open before a probe.
        name: label used in error messages.
        clock: time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 30.0,
        name: str = "component",
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after < 0:
            raise ReproError(
                f"reset_after must be >= 0, got {reset_after}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after = float(reset_after)
        self.name = name
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_after:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state exactly one caller is admitted as the
        probe; others keep failing fast until it reports back.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        self._probing = False
        if self._opened_at is not None or (
            self._failures >= self.failure_threshold
        ):
            if self._opened_at is None:
                self.trips += 1
                emit_event(
                    "breaker_trip",
                    component=self.name,
                    failures=self._failures,
                )
            self._opened_at = self._clock()

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker's supervision."""
        if not self.allow():
            retry_at = (
                self._opened_at + self.reset_after
                if self._opened_at is not None
                else None
            )
            raise CircuitOpenError(
                f"{self.name} circuit is open after "
                f"{self._failures} consecutive failures",
                retry_at=retry_at,
            )
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    def describe(self) -> dict:
        return {
            "state": self.state,
            "failures": self._failures,
            "failure_threshold": self.failure_threshold,
            "reset_after": self.reset_after,
            "trips": self.trips,
        }


@dataclass
class ResilienceStats:
    """What a resilient wrapper absorbed on behalf of its caller.

    Attributes:
        retried: transient failures masked by a successful retry.
        degraded_ops: operations served by the degraded path (the
            store's memory overlay) instead of the real component.
        recoveries: times the component came back and, for stores,
            the overlay was flushed into it.
        flushed: overlay entries written back on recovery.
    """

    retried: int = 0
    degraded_ops: int = 0
    recoveries: int = 0
    flushed: int = 0

    def as_dict(self) -> dict:
        return {
            "retried": self.retried,
            "degraded_ops": self.degraded_ops,
            "recoveries": self.recoveries,
            "flushed": self.flushed,
        }


class _ResilientBase:
    """Shared retry/delegation plumbing for the wrappers."""

    def __init__(
        self,
        inner,
        retry: RetryPolicy | None,
        sleep: Callable[[float], None],
    ):
        self._inner = inner
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self._sleep = sleep
        self.resilience = ResilienceStats()
        # Label the wrapper's telemetry by what it protects.
        self.component = getattr(inner, "name", type(inner).__name__)
        track_resilience(self)

    @property
    def inner(self):
        """The wrapped component (for tests and diagnostics)."""
        return self._inner

    def _count_retry(self, attempt: int, error: BaseException) -> None:
        self.resilience.retried += 1

    def _retry_call(self, fn: Callable, *args, **kwargs):
        return self.retry.call(
            fn,
            *args,
            sleep=self._sleep,
            on_retry=self._count_retry,
            **kwargs,
        )

    def __getattr__(self, name: str):
        # Implementation-specific surface (directory, path,
        # partial_files, ...) passes straight through, so the wrapper
        # is drop-in anywhere the wrapped type was.
        return getattr(self._inner, name)


class ResilientStore(_ResilientBase, CacheStore):
    """A :class:`CacheStore` that retries, breaks and degrades.

    Every call is retried under ``retry``; terminal failures feed the
    breaker.  When the breaker opens the store *degrades* instead of
    aborting the study: a warning is emitted once, persists land in a
    process-local :class:`MemoryStore` overlay (so results are never
    lost — only their durability is deferred), and loads are answered
    from the overlay.  Once ``breaker.reset_after`` passes, the next
    call probes the real store; on success the overlay is flushed
    into it and normal service resumes.

    Args:
        inner: the real store.
        retry: transient-retry policy (default :data:`DEFAULT_RETRY`).
        breaker: trip switch (default: 5 failures / 30 s reset).
        sleep: injectable sleep for the retry schedule.
    """

    def __init__(
        self,
        inner: CacheStore,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        _ResilientBase.__init__(self, inner, retry, sleep)
        CacheStore.__init__(self)
        self.name = f"resilient[{inner.name}]"
        self.breaker = breaker or CircuitBreaker(name=f"{inner.name} store")
        self._overlay = MemoryStore()
        self._warned = False
        # Mirror the wrapped store's stats object so traffic counted
        # by the inner store is what callers (EvalCache) observe.
        self.stats = inner.stats

    # -- the degradation machinery ---------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether calls are currently served by the memory overlay."""
        return self.breaker.state != "closed"

    def overlay_entries(self) -> int:
        """Entries waiting in the overlay for the store to recover."""
        return len(self._overlay)

    def _warn_once(self, error: BaseException) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"cache store {self._inner.name!r} is failing "
                f"({error}); degrading to a memory-only cache — "
                "results are preserved in process but will not "
                "persist until the store recovers",
                RuntimeWarning,
                stacklevel=3,
            )

    def _flush_overlay(self) -> None:
        if not len(self._overlay):
            return
        for fingerprint, responses in list(self._overlay.items()):
            meta = self._overlay.entry_meta(fingerprint)
            try:
                self._inner.persist(fingerprint, responses, meta=meta)
            # repro-lint: allow[REP105] flush is opportunistic; whatever failed stays in the overlay and persists are idempotent, so the next recovery retries it
            except BaseException:
                # The store flaked again mid-flush.  Whatever made it
                # across is durable; the rest stays in the overlay for
                # the next recovery — persists are idempotent, so a
                # partially flushed overlay is always safe to retry.
                return
            self._overlay.discard(fingerprint)
            self.resilience.flushed += 1
        self.resilience.recoveries += 1
        emit_event(
            "recovery",
            component=self.component,
            flushed=self.resilience.flushed,
        )

    def _guarded(self, fn: Callable, *args, fallback=None, **kwargs):
        """Run one store op under retry + breaker; on terminal
        failure degrade and return/execute the overlay fallback."""
        try:
            result = self.breaker.call(
                self._retry_call, fn, *args, **kwargs
            )
        except CircuitOpenError:
            self.resilience.degraded_ops += 1
            emit_event(
                "degraded_op",
                component=self.component,
                op=getattr(fn, "__name__", "?"),
                reason="circuit-open",
            )
            return fallback() if callable(fallback) else fallback
        # repro-lint: allow[REP105] degradation is the contract here: retry+breaker already classified via is_transient, terminal failures fall back to the overlay
        except BaseException as error:
            self._warn_once(error)
            self.resilience.degraded_ops += 1
            emit_event(
                "degraded_op",
                component=self.component,
                op=getattr(fn, "__name__", "?"),
                reason="store-failure",
            )
            return fallback() if callable(fallback) else fallback
        self._flush_overlay()
        return result

    # -- the CacheStore contract -----------------------------------------------

    def load(self, fingerprint: str):
        # Snapshot the overlay first: a half-open probe reads the
        # inner store *before* the recovery flush lands this entry,
        # so an overlay hit must win over an inner miss.
        overlaid = self._overlay.load(fingerprint)
        result = self._guarded(
            self._inner.load, fingerprint, fallback=None
        )
        return result if result is not None else overlaid

    def peek(self, fingerprint: str):
        overlaid = self._overlay.peek(fingerprint)
        result = self._guarded(
            self._inner.peek, fingerprint, fallback=None
        )
        return result if result is not None else overlaid

    def persist(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None = None,
    ) -> None:
        self._guarded(
            self._inner.persist,
            fingerprint,
            responses,
            meta=meta,
            fallback=lambda: self._overlay.persist(
                fingerprint, responses, meta=meta
            ),
        )

    def load_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        if not fingerprints:
            return {}
        # Overlay snapshot first, same as load(): an overlay hit must
        # win over an inner miss while a recovery flush is pending.
        overlaid = self._overlay.load_many(fingerprints)
        result = self._guarded(
            self._inner.load_many, fingerprints, fallback=None
        )
        if result is None:
            return overlaid
        if not overlaid:
            return result
        out: dict[str, dict[str, float]] = {}
        for fingerprint in dict.fromkeys(fingerprints):
            if fingerprint in result:
                out[fingerprint] = result[fingerprint]
            elif fingerprint in overlaid:
                out[fingerprint] = overlaid[fingerprint]
        return out

    def persist_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        if not entries:
            return
        # Retry re-runs the whole batch; persists are idempotent
        # (INSERT OR REPLACE / atomic rename), so a mid-batch
        # transient neither loses nor double-applies entries.
        entries = list(entries)
        self._guarded(
            self._inner.persist_many,
            entries,
            fallback=lambda: self._overlay.persist_many(entries),
        )

    def discard(self, fingerprint: str) -> bool:
        overlaid = self._overlay.discard(fingerprint)
        dropped = self._guarded(
            self._inner.discard, fingerprint, fallback=False
        )
        return bool(dropped or overlaid)

    def clear(self) -> None:
        self._overlay.clear()
        self._guarded(self._inner.clear, fallback=None)

    def __len__(self) -> int:
        inner = self._guarded(self._inner.__len__, fallback=0)
        return int(inner) + (
            len(self._overlay) if self.degraded else 0
        )

    def __contains__(self, fingerprint: str) -> bool:
        if self.degraded and fingerprint in self._overlay:
            return True
        return bool(
            self._guarded(
                self._inner.__contains__, fingerprint, fallback=False
            )
        )

    def items(self):
        if self.degraded:
            yield from self._overlay.items()
            return
        yield from self._inner.items()

    def entries(self):
        if self.degraded:
            yield from self._overlay.entries()
            return
        yield from self._inner.entries()

    def entry_meta(self, fingerprint: str):
        if self.degraded:
            return self._overlay.entry_meta(fingerprint)
        return self._inner.entry_meta(fingerprint)

    def total_bytes(self) -> int:
        if self.degraded:
            return self._overlay.total_bytes()
        return self._inner.total_bytes()

    def verify(self, repair: bool = False) -> VerifyReport:
        if self.degraded:
            return self._overlay.verify(repair=repair)
        return self._inner.verify(repair=repair)

    def compact(self, *, grace_seconds: float = 60.0):
        report = self._inner.compact(grace_seconds=grace_seconds)
        return replace(report, store=self.name)

    def describe(self) -> dict:
        return {
            **self._inner.describe(),
            "store": self.name,
            "resilient": True,
            "degraded": self.degraded,
            "overlay_entries": self.overlay_entries(),
            "breaker": self.breaker.describe(),
            "resilience": self.resilience.as_dict(),
        }

    def close(self) -> None:
        self._inner.close()


class ResilientQueue(_ResilientBase, WorkQueue):
    """A :class:`WorkQueue` whose every call retries transients.

    The queue does not degrade the way the store does — work
    dispatch has no meaningful memory-only fallback (the
    :class:`~repro.exec.queue.DistributedBackend` owns that decision
    and falls back to in-process *evaluation* instead).  What the
    wrapper guarantees is that a briefly-locked database or a flaky
    filesystem never turns one lease/complete/heartbeat into a
    worker crash.
    """

    def __init__(
        self,
        inner: WorkQueue,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        _ResilientBase.__init__(self, inner, retry, sleep)
        WorkQueue.__init__(self, max_attempts=inner.max_attempts)
        # WorkQueue.__init__ sets an instance-level transactions
        # counter that would shadow __getattr__ delegation; drop it so
        # reads see the inner queue's live counter.
        self.__dict__.pop("transactions", None)
        self.name = f"resilient[{inner.name}]"

    def submit(self, jobs: Sequence[Job]) -> int:
        return self._retry_call(self._inner.submit, jobs)

    def lease(
        self,
        worker_id: str,
        n: int = 1,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> list[Job]:
        return self._retry_call(
            self._inner.lease, worker_id, n, lease_seconds, now
        )

    def complete(
        self,
        worker_id: str,
        job_id: str,
        *,
        seconds: float = 0.0,
        now: float | None = None,
    ) -> bool:
        return self._retry_call(
            self._inner.complete,
            worker_id,
            job_id,
            seconds=seconds,
            now=now,
        )

    def fail(
        self,
        worker_id: str,
        job_id: str,
        error: str = "",
        now: float | None = None,
    ) -> bool:
        return self._retry_call(
            self._inner.fail, worker_id, job_id, error, now
        )

    def heartbeat(
        self,
        worker_id: str,
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        return self._retry_call(
            self._inner.heartbeat, worker_id, lease_seconds, now
        )

    def complete_many(
        self,
        worker_id: str,
        completions: Sequence[tuple[str, float]],
        *,
        now: float | None = None,
    ) -> int:
        # A retried batch re-applies idempotently: jobs already
        # completed in the first attempt stay done and report False,
        # so the batch is neither lost nor double-applied.
        return self._retry_call(
            self._inner.complete_many, worker_id, list(completions), now=now
        )

    def fail_many(
        self,
        worker_id: str,
        failures: Sequence[tuple[str, str]],
        now: float | None = None,
    ) -> int:
        return self._retry_call(
            self._inner.fail_many, worker_id, list(failures), now
        )

    def heartbeat_many(
        self,
        worker_id: str,
        job_ids: Sequence[str],
        lease_seconds: float = 60.0,
        now: float | None = None,
    ) -> int:
        return self._retry_call(
            self._inner.heartbeat_many,
            worker_id,
            list(job_ids),
            lease_seconds,
            now,
        )

    def reclaim(self, now: float | None = None) -> int:
        return self._retry_call(self._inner.reclaim, now)

    def requeue(self, job_id: str, now: float | None = None) -> bool:
        return self._retry_call(self._inner.requeue, job_id, now)

    def purge(
        self,
        statuses: Sequence[str] = ("done", "failed"),
        older_than_seconds: float = 0.0,
        now: float | None = None,
    ) -> int:
        return self._retry_call(
            self._inner.purge, statuses, older_than_seconds, now
        )

    def job(self, job_id: str) -> JobRecord | None:
        return self._retry_call(self._inner.job, job_id)

    def jobs(self):
        yield from self._retry_call(
            lambda: list(self._inner.jobs())
        )

    def __len__(self) -> int:
        return self._retry_call(self._inner.__len__)

    def stats(self, now: float | None = None):
        return self._retry_call(self._inner.stats, now)

    def describe(self) -> dict:
        return {
            **self._inner.describe(),
            "queue": self.name,
            "resilient": True,
            "resilience": self.resilience.as_dict(),
        }

    def close(self) -> None:
        self._inner.close()
