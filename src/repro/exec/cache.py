"""Content-addressed cache for design-point evaluations.

A design point is identified by the *canonical hash* of its physical
factor dictionary plus an evaluation-context fingerprint (mission
length, engine choice, envelope options, system overrides — anything
that changes the mapping from factors to responses).  CCD axial/centre
replicates, validation points revisiting study points, and repeated
studies over the same configuration therefore share one simulation.

Where the entries live is pluggable (:mod:`repro.exec.store`): the
default :class:`~repro.exec.store.MemoryStore` keeps the cache
process-local exactly as before, while a
:class:`~repro.exec.store.FileStore` or
:class:`~repro.exec.store.SQLiteStore` shares evaluations across
processes, CI runs and hosts.  Evaluations are deterministic, so a
lost or invalidated entry is never a correctness problem — the engine
simply re-simulates.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.exec.store import (
    MIRRORED_COUNTERS,
    CacheStore,
    MemoryStore,
    resolve_store,
)


def _canonical_key(key: object) -> str:
    """Type-tagged string form of a mapping key.

    ``{1: x}`` and ``{"1": x}`` are different contexts, so keys carry
    their type in the canonical form instead of collapsing through
    ``str``.  The tags also keep marker keys like ``__type__`` (used
    for attribute-bag objects) out of the user-key namespace: a real
    string key canonicalizes to ``s:__type__``, never ``__type__``.
    """
    if isinstance(key, str):
        return f"s:{key}"
    # numpy scalars first: np.float64 *subclasses* float, and its repr
    # ("np.float64(1.5)") is numpy-version-dependent — normalize to
    # the Python scalar so persisted fingerprints match across hosts.
    if isinstance(key, (np.floating, np.integer)):
        return _canonical_key(key.item())
    if isinstance(key, np.bool_):
        return _canonical_key(bool(key))
    if isinstance(key, bool):  # before int: bool subclasses int
        return f"b:{key!r}"
    if isinstance(key, int):
        return f"i:{key!r}"
    if isinstance(key, float):
        return f"f:{key!r}"
    if isinstance(key, tuple):
        # Recurse instead of repr-ing, so numpy scalars inside tuple
        # keys normalize like every other scalar; length-prefix each
        # element so payloads containing the delimiter cannot make
        # ('a,s:b',) collide with ('a', 'b').
        parts = [_canonical_key(v) for v in key]
        joined = ",".join(f"{len(p)}~{p}" for p in parts)
        return f"t:({joined})"
    return f"{type(key).__name__}:{key!r}"


def _canonical(obj: object, depth: int = 0) -> object:
    """Reduce an object to a JSON-stable structure.

    Floats go through ``repr`` so the key reflects the exact bit
    pattern handed to the evaluator (1.0 and 1.0000000000000002 are
    different design points); containers and plain attribute-bag
    objects (vibration sources, option dataclasses) are recursed;
    anything else falls back to ``repr`` of its type and value.
    Mapping keys, set elements, strings and floats are type-tagged so
    values that merely print alike (``1`` vs ``"1"``, ``1.5`` vs
    ``"1.5"``) cannot share a fingerprint, and sets are marked
    distinct from lists.
    """
    if depth > 8:
        return f"{type(obj).__name__}:{obj!r}"
    # numpy scalars before the Python branches: np.float64 subclasses
    # float and np.bool_ prints like bool, but their reprs vary with
    # the numpy version — persisted fingerprints must not.
    if isinstance(obj, (np.floating, np.integer)):
        return _canonical(obj.item(), depth)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if obj is None or isinstance(obj, (bool, int)):
        return obj
    # Strings and floats are both tagged: a float canonicalizes via
    # repr, so an untagged 1.5 would be indistinguishable from the
    # *string* "1.5" (and an untagged string could forge any tagged
    # form).  None/bool/int stay native — JSON already separates them
    # from strings.
    if isinstance(obj, str):
        return f"s:{obj}"
    if isinstance(obj, float):
        return f"f:{obj!r}"
    if isinstance(obj, np.ndarray):
        return [_canonical(v, depth + 1) for v in obj.tolist()]
    if isinstance(obj, Mapping):
        return {
            _canonical_key(k): _canonical(obj[k], depth + 1)
            for k in sorted(obj, key=_canonical_key)
        }
    if isinstance(obj, (set, frozenset)):
        # Ordered by the tagged key, so mixed-type contents sort
        # deterministically without repr collisions; the marker key
        # cannot clash with a real mapping (those keys are tagged).
        items = sorted(obj, key=_canonical_key)
        return {"__set__": [_canonical(v, depth + 1) for v in items]}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v, depth + 1) for v in obj]
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        return {
            "__type__": type(obj).__name__,
            **{
                _canonical_key(k): _canonical(v, depth + 1)
                for k, v in sorted(
                    attrs.items(), key=lambda kv: _canonical_key(kv[0])
                )
            },
        }
    return f"{type(obj).__name__}:{obj!r}"


def point_fingerprint(
    point: Mapping[str, float], context: object = None
) -> str:
    """Canonical hash of a physical factor dict within a context."""
    payload = json.dumps(
        {"point": _canonical(point), "context": _canonical(context)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss and store-traffic accounting for the study reports.

    All counters are *this cache's* traffic: the store-level ones
    (``loads``, ``persists``, ``invalidations``, ``evictions``, and
    the GC/compaction family ``gc_evictions`` / ``bytes_reclaimed`` /
    ``compactions``) count only operations issued through this cache,
    so per-study deltas stay clean even when several caches share one
    store.  The store's own lifetime totals live on
    ``EvalCache.store.stats``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    loads: int = 0
    persists: int = 0
    invalidations: int = 0
    gc_evictions: int = 0
    bytes_reclaimed: int = 0
    compactions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
        for name in MIRRORED_COUNTERS:
            out[name] = getattr(self, name)
        return out


class EvalCache:
    """Map from point fingerprints to response dictionaries.

    Args:
        max_entries: LRU bound for the default in-memory store; None
            keeps every entry.  Rejected alongside an explicit
            ``store`` — bound the store itself instead.
        store: where entries live — a ready
            :class:`~repro.exec.store.CacheStore`, a directory path
            (file store), a ``.sqlite``/``.db`` path (SQLite store),
            or None for the process-local memory store.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        store: CacheStore | str | os.PathLike | None = None,
    ):
        self.store = resolve_store(store, max_entries=max_entries)
        self.stats = CacheStats()

    def _store_counters(self) -> tuple[int, ...]:
        stats = self.store.stats
        return tuple(getattr(stats, name) for name in MIRRORED_COUNTERS)

    def _absorb_store_delta(self, before: tuple[int, ...]) -> None:
        """Credit this cache with the store traffic it just caused."""
        after = self._store_counters()
        for name, was, now in zip(MIRRORED_COUNTERS, before, after):
            setattr(self.stats, name, getattr(self.stats, name) + now - was)

    @property
    def max_entries(self) -> int | None:
        return getattr(self.store, "max_entries", None)

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.store

    def get(self, fingerprint: str) -> dict[str, float] | None:
        """Responses for a fingerprint, or None (counts hit/miss)."""
        before = self._store_counters()
        entry = self.store.load(fingerprint)
        self._absorb_store_delta(before)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return dict(entry)

    def put(self, fingerprint: str, responses: Mapping[str, float]) -> None:
        """Store an evaluation (refreshes recency on overwrite)."""
        if not isinstance(fingerprint, str):
            raise ReproError(
                f"fingerprint must be a string, got {type(fingerprint)!r}"
            )
        before = self._store_counters()
        self.store.persist(fingerprint, dict(responses))
        self._absorb_store_delta(before)

    def get_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        """Batched :meth:`get`: one store round trip for the lot.

        Counts one hit per unique found fingerprint and one miss per
        unique absent one — identical totals to a ``get`` loop, for
        one ``load_many`` instead of N loads.
        """
        if not fingerprints:
            return {}
        unique = list(dict.fromkeys(fingerprints))
        before = self._store_counters()
        found = self.store.load_many(unique)
        self._absorb_store_delta(before)
        self.stats.hits += len(found)
        self.stats.misses += len(unique) - len(found)
        return {fp: dict(entry) for fp, entry in found.items()}

    def put_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        """Batched :meth:`put`: one store round trip for the lot."""
        if not entries:
            return
        rows: list[tuple[str, Mapping[str, float]]] = []
        for fingerprint, responses in entries:
            if not isinstance(fingerprint, str):
                raise ReproError(
                    f"fingerprint must be a string, got {type(fingerprint)!r}"
                )
            rows.append((fingerprint, dict(responses)))
        before = self._store_counters()
        self.store.persist_many(rows)
        self._absorb_store_delta(before)

    def discard(self, fingerprint: str) -> bool:
        """Drop one entry; True if it existed."""
        before = self._store_counters()
        existed = self.store.discard(fingerprint)
        self._absorb_store_delta(before)
        return existed

    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        """Iterate stored ``(fingerprint, responses)`` pairs."""
        return self.store.items()

    def clear(self) -> None:
        """Drop all entries (lookup statistics are kept)."""
        before = self._store_counters()
        self.store.clear()
        self._absorb_store_delta(before)

    # -- lifecycle passthroughs (traffic credited to this cache) ---------------

    def collect(self, budget) -> "object":
        """Garbage-collect the backing store to a budget; see
        :func:`repro.exec.lifecycle.collect`."""
        from repro.exec.lifecycle import collect

        before = self._store_counters()
        report = collect(self.store, budget)
        self._absorb_store_delta(before)
        return report

    def compact(self, *, grace_seconds: float = 60.0) -> "object":
        """Compact the backing store; see
        :meth:`repro.exec.store.CacheStore.compact`."""
        before = self._store_counters()
        report = self.store.compact(grace_seconds=grace_seconds)
        self._absorb_store_delta(before)
        return report

    def verify(self, repair: bool = False) -> "object":
        """Integrity-scan the backing store; see
        :meth:`repro.exec.store.CacheStore.verify`."""
        before = self._store_counters()
        report = self.store.verify(repair=repair)
        self._absorb_store_delta(before)
        return report

    def close(self) -> None:
        """Close the backing store (idempotent)."""
        self.store.close()

    def describe(self) -> dict:
        """Store parameters for reports and manifests."""
        return self.store.describe()


# Re-exported for callers that treated this module as the cache API.
__all__ = [
    "CacheStats",
    "EvalCache",
    "MemoryStore",
    "point_fingerprint",
]
