"""Content-addressed cache for design-point evaluations.

A design point is identified by the *canonical hash* of its physical
factor dictionary plus an evaluation-context fingerprint (mission
length, engine choice, envelope options, system overrides — anything
that changes the mapping from factors to responses).  CCD axial/centre
replicates, validation points revisiting study points, and repeated
studies over the same configuration therefore share one simulation.

The cache is deliberately process-local and in-memory: evaluations are
deterministic, so re-populating it is always safe, and keeping it out
of the filesystem avoids stale-artefact hazards across code changes.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ReproError


def _canonical(obj: object, depth: int = 0) -> object:
    """Reduce an object to a JSON-stable structure.

    Floats go through ``repr`` so the key reflects the exact bit
    pattern handed to the evaluator (1.0 and 1.0000000000000002 are
    different design points); containers and plain attribute-bag
    objects (vibration sources, option dataclasses) are recursed;
    anything else falls back to ``repr`` of its type and value.
    """
    if depth > 8:
        return f"{type(obj).__name__}:{obj!r}"
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (np.floating, np.integer)):
        return repr(obj.item())
    if isinstance(obj, np.ndarray):
        return [_canonical(v, depth + 1) for v in obj.tolist()]
    if isinstance(obj, Mapping):
        return {
            str(k): _canonical(obj[k], depth + 1)
            for k in sorted(obj, key=str)
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [_canonical(v, depth + 1) for v in items]
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        return {
            "__type__": type(obj).__name__,
            **{
                str(k): _canonical(v, depth + 1)
                for k, v in sorted(attrs.items(), key=lambda kv: str(kv[0]))
            },
        }
    return f"{type(obj).__name__}:{obj!r}"


def point_fingerprint(
    point: Mapping[str, float], context: object = None
) -> str:
    """Canonical hash of a physical factor dict within a context."""
    payload = json.dumps(
        {"point": _canonical(point), "context": _canonical(context)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting exposed through the study reports."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class EvalCache:
    """LRU map from point fingerprints to response dictionaries.

    Args:
        max_entries: bound on stored evaluations; None keeps every
            entry (study-scale workloads are thousands of points of a
            few floats each, so unbounded is the sensible default).
    """

    def __init__(self, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ReproError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, dict[str, float]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> dict[str, float] | None:
        """Responses for a fingerprint, or None (counts hit/miss)."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        return dict(entry)

    def put(self, fingerprint: str, responses: Mapping[str, float]) -> None:
        """Store an evaluation (refreshes recency on overwrite)."""
        self._entries[fingerprint] = dict(responses)
        self._entries.move_to_end(fingerprint)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()
