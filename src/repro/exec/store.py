"""Pluggable storage behind the evaluation cache.

:class:`~repro.exec.cache.EvalCache` fronts a :class:`CacheStore` — the
seam the ROADMAP names for sharing evaluations beyond one process.
Three stores ship:

* :class:`MemoryStore` — the process-local ``OrderedDict`` semantics
  the cache has always had (LRU-bounded when asked); the default.
* :class:`FileStore` — one JSON blob per fingerprint in a directory,
  written via atomic rename, so independent processes (CI jobs, hosts
  sharing a network mount) can populate and read one store without
  coordination.
* :class:`SQLiteStore` — a single-file database in WAL mode with a
  busy timeout, safe for concurrent writers on one filesystem.

Every persisted blob is versioned (:data:`SCHEMA_VERSION`) and
self-identifying (it records its own fingerprint).  Loads are
corruption-tolerant: an unreadable, mis-versioned or mismatched entry
is dropped and counted as an invalidation, never raised — evaluations
are deterministic, so re-simulating a lost point is always correct.

Entries carry *lifecycle metadata* (:class:`EntryMeta`): creation and
last-use timestamps, approximate byte size, and hit counts where they
are cheap to maintain (memory and SQLite; the file store would have to
rewrite a blob per hit, so it reports None).  The metadata feeds
:mod:`repro.exec.lifecycle` — garbage collection under size/age/count
budgets, compaction, verification and store-to-store transfer — and
the ``repro-cache`` CLI (:mod:`repro.exec.cli`).

Store traffic (loads, persists, invalidations, evictions, GC and
compaction work) is tracked in :class:`StoreStats` and mirrored into
the fronting cache's :class:`~repro.exec.cache.CacheStats`, so
``study.report()`` and the benchmark manifests see one merged picture.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.errors import ReproError, TransientStoreError, is_transient
from repro.exec.sqlite_util import connect_wal
from repro.obs.catalog import track_store

#: On-disk schema version shared by every persistent store.  Bump it
#: whenever the fingerprint canonicalization or the blob layout
#: changes; old entries then invalidate themselves on load instead of
#: serving stale responses.
SCHEMA_VERSION = 1

#: Counters mirrored from :class:`StoreStats` into the fronting
#: cache's :class:`~repro.exec.cache.CacheStats` as per-cache deltas.
MIRRORED_COUNTERS = (
    "loads",
    "persists",
    "invalidations",
    "evictions",
    "gc_evictions",
    "bytes_reclaimed",
    "compactions",
)


@dataclass
class StoreStats:
    """Traffic counters of one store (store-lifetime, monotonic).

    Attributes:
        loads: lookups answered from storage.
        persists: evaluations written to storage.
        invalidations: entries dropped — corrupt payloads, schema
            mismatches, explicit discards and clears (GC evictions
            included; ``gc_evictions`` counts that subset separately).
        evictions: entries displaced by a capacity bound (memory
            store only).
        gc_evictions: entries removed by lifecycle garbage collection
            (:func:`repro.exec.lifecycle.collect`).
        bytes_reclaimed: approximate bytes freed by GC and compaction.
        compactions: ``compact()`` passes run against this store.
        round_trips: hot-path store API calls (``load`` / ``peek`` /
            ``persist`` / ``load_many`` / ``persist_many``) — each is
            one client<->substrate round trip, so a batched call that
            serves N entries still counts 1.  ``loads - round_trips``
            therefore measures how much traffic batching amortized.
        stats_saved: filesystem ``stat`` calls the file store avoided
            by reusing its directory-scan metadata in ``load_many``
            (other stores never tick it).
    """

    loads: int = 0
    persists: int = 0
    invalidations: int = 0
    evictions: int = 0
    gc_evictions: int = 0
    bytes_reclaimed: int = 0
    compactions: int = 0
    round_trips: int = 0
    stats_saved: int = 0

    def as_dict(self) -> dict:
        out = {name: getattr(self, name) for name in MIRRORED_COUNTERS}
        out["round_trips"] = self.round_trips
        out["stats_saved"] = self.stats_saved
        return out


@dataclass
class EntryMeta:
    """Lifecycle metadata of one stored entry.

    Attributes:
        fingerprint: the entry's content hash.
        created_at: epoch seconds the entry was persisted (None when
            the backing store cannot say).
        last_used_at: epoch seconds of the last successful load
            (falls back to ``created_at`` for never-loaded entries).
        size_bytes: approximate stored size of the entry's blob.
        hits: loads served from this entry, where counting is cheap
            (memory/SQLite); None for the file store, which would
            have to rewrite the blob per hit.
    """

    fingerprint: str
    created_at: float | None = None
    last_used_at: float | None = None
    size_bytes: int = 0
    hits: int | None = None

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "last_used_at": self.last_used_at,
            "size_bytes": self.size_bytes,
            "hits": self.hits,
        }


@dataclass
class VerifyReport:
    """Outcome of a full store integrity scan.

    Attributes:
        scanned: raw slots examined (valid + invalid entries).
        valid: entries whose blob decoded, matched the schema version
            and carried the fingerprint they are filed under.
        invalid: entries that failed any of those checks.
        partials: leftover temp/partial writer files (file store).
        repaired: invalid entries dropped because ``repair`` was set.
        total_bytes: approximate bytes held by valid entries.
    """

    store: str
    scanned: int = 0
    valid: int = 0
    invalid: int = 0
    partials: int = 0
    repaired: int = 0
    total_bytes: int = 0

    @property
    def clean(self) -> bool:
        """No invalid entries and no partial files left behind."""
        return self.invalid - self.repaired == 0 and self.partials == 0

    def as_dict(self) -> dict:
        return {
            "store": self.store,
            "scanned": self.scanned,
            "valid": self.valid,
            "invalid": self.invalid,
            "partials": self.partials,
            "repaired": self.repaired,
            "total_bytes": self.total_bytes,
            "clean": self.clean,
        }


@dataclass
class CompactionReport:
    """Outcome of one ``compact()`` pass.

    Attributes:
        partials_removed: temp/partial files swept (file store).
        orphans_removed: structurally hopeless blobs swept without a
            full read — today, zero-byte files (file store).
        bytes_reclaimed: approximate bytes freed (for SQLite, the
            database file shrink achieved by checkpoint + VACUUM).
    """

    store: str
    partials_removed: int = 0
    orphans_removed: int = 0
    bytes_reclaimed: int = 0

    def as_dict(self) -> dict:
        return {
            "store": self.store,
            "partials_removed": self.partials_removed,
            "orphans_removed": self.orphans_removed,
            "bytes_reclaimed": self.bytes_reclaimed,
        }


def _validate_blob(blob: object, fingerprint: str) -> dict[str, float] | None:
    """Responses from a persisted blob, or None if it cannot be trusted."""
    if not isinstance(blob, dict):
        return None
    if blob.get("schema") != SCHEMA_VERSION:
        return None
    if blob.get("fingerprint") != fingerprint:
        return None
    responses = blob.get("responses")
    if not isinstance(responses, dict):
        return None
    out: dict[str, float] = {}
    for name, value in responses.items():
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            return None
        out[name] = float(value)
    return out


def _encode_blob(fingerprint: str, responses: Mapping[str, float]) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "responses": {str(k): float(v) for k, v in responses.items()},
    }


def _encode_payload(fingerprint: str, responses: Mapping[str, float]) -> str:
    return json.dumps(_encode_blob(fingerprint, responses), sort_keys=True)


class CacheStore(ABC):
    """Where evaluation-cache entries live.

    The contract is a string-keyed blob map with deterministic values:
    ``persist`` may be called repeatedly for one fingerprint (always
    with an identical payload, evaluations being pure), ``load``
    returns None for anything absent or untrustworthy, and no method
    raises for data-level problems — a store that cannot answer simply
    misses and the engine re-simulates.

    On top of the map, every store exposes the lifecycle surface that
    :mod:`repro.exec.lifecycle` and the ``repro-cache`` CLI build on:
    per-entry metadata (:meth:`entries` / :meth:`entry_meta` /
    :meth:`total_bytes`), integrity scanning (:meth:`verify`),
    space reclamation (:meth:`compact`) and store-to-store transfer
    (:meth:`export_to` / :meth:`merge_from`).
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = StoreStats()
        # Pull-time metrics mirror: the registry reads ``self.stats``
        # only when scraped, so the store's hot path pays nothing.
        track_store(self)

    @abstractmethod
    def load(self, fingerprint: str) -> dict[str, float] | None:
        """Responses persisted under a fingerprint, or None."""

    @abstractmethod
    def persist(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None = None,
    ) -> None:
        """Durably associate responses with a fingerprint.

        ``meta`` carries timestamps/hits to preserve when an entry is
        copied between stores (export/merge); plain evaluation traffic
        leaves it None and the store stamps the entry itself.
        """

    # -- batched hot path ------------------------------------------------------

    def load_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        """Batch :meth:`load`: hits only, keyed by fingerprint.

        The contract every store honours:

        * misses are simply absent — never None values;
        * duplicate fingerprints in the input collapse to one lookup;
        * result insertion order is the input's first-occurrence order
          (so ``zip``-style reassembly stays deterministic);
        * an empty input returns ``{}`` without touching the store.

        This default loops :meth:`load`, so it costs one round trip
        per unique fingerprint; the shipped stores override it with a
        single-transaction / single-directory-scan implementation that
        costs one.
        """
        out: dict[str, dict[str, float]] = {}
        seen: set[str] = set()
        for fingerprint in fingerprints:
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            responses = self.load(fingerprint)
            if responses is not None:
                out[fingerprint] = responses
        return out

    def persist_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        """Batch :meth:`persist` of ``(fingerprint, responses)`` pairs.

        Duplicate fingerprints are legal and resolve last-wins (the
        pairs apply in order); an empty input touches nothing.  This
        default loops :meth:`persist`; the shipped stores override it
        to apply the whole batch in one transaction / one round trip.
        """
        for fingerprint, responses in entries:
            self.persist(fingerprint, responses)

    @abstractmethod
    def peek(self, fingerprint: str) -> dict[str, float] | None:
        """Read an entry with *no side effects at all*.

        Unlike :meth:`load`, peeking never counts as a use (no hit
        counter, no recency bump — an entry an operator inspected
        must not outlive hotter ones under LRU GC), never drops an
        invalid entry (it just returns None, leaving the evidence in
        place for ``verify``), and touches no statistics.
        """

    @abstractmethod
    def discard(self, fingerprint: str) -> bool:
        """Drop one entry; True if it existed."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    @abstractmethod
    def __contains__(self, fingerprint: str) -> bool:
        """Entry presence without counting a load."""

    @abstractmethod
    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        """Iterate valid ``(fingerprint, responses)`` pairs.

        Used for inspection and store-to-store migration (e.g. seeding
        a :class:`SQLiteStore` from a :class:`FileStore` directory).
        """

    # -- lifecycle surface -----------------------------------------------------

    @abstractmethod
    def entries(self) -> Iterator[EntryMeta]:
        """Iterate metadata for every stored entry."""

    def entry_meta(self, fingerprint: str) -> EntryMeta | None:
        """Metadata for one entry, or None if absent."""
        for meta in self.entries():
            if meta.fingerprint == fingerprint:
                return meta
        return None

    def total_bytes(self) -> int:
        """Approximate bytes held by all entries."""
        return sum(meta.size_bytes for meta in self.entries())

    @abstractmethod
    def verify(self, repair: bool = False) -> VerifyReport:
        """Scan every entry for integrity without serving any of them.

        Unlike :meth:`load`, verification is non-destructive by
        default: invalid entries are *reported*, and only dropped when
        ``repair`` is set.
        """

    def compact(self, *, grace_seconds: float = 60.0) -> CompactionReport:
        """Reclaim dead space; see each store for what that means.

        Args:
            grace_seconds: minimum age of a temp/partial file before
                the file store sweeps it (a younger one may belong to
                a live writer); ignored by other stores.
        """
        report = self._compact(grace_seconds=grace_seconds)
        self.stats.compactions += 1
        self.stats.bytes_reclaimed += max(report.bytes_reclaimed, 0)
        return report

    def _compact(self, *, grace_seconds: float) -> CompactionReport:
        return CompactionReport(store=self.name)

    def export_to(
        self, dest: "CacheStore | str | os.PathLike"
    ) -> "object":
        """Copy every valid entry into another store (newest wins).

        ``dest`` may be a ready store or a path spec for
        :func:`resolve_store`; a store built here from a path spec is
        closed before returning (its entries are durable).  Returns a
        :class:`repro.exec.lifecycle.TransferReport`.
        """
        from repro.exec.lifecycle import merge_stores

        dest_store = resolve_store(dest)
        try:
            return merge_stores(dest_store, self)
        finally:
            if not isinstance(dest, CacheStore):
                dest_store.close()

    def merge_from(
        self, source: "CacheStore | str | os.PathLike"
    ) -> "object":
        """Union another store's valid entries into this one.

        Fingerprint collisions resolve newest-wins by creation time;
        a mismatched or corrupt source blob is never copied (the
        source's own validation filters it out).  Returns a
        :class:`repro.exec.lifecycle.TransferReport`.
        """
        from repro.exec.lifecycle import merge_stores

        source_store = resolve_store(source)
        try:
            return merge_stores(self, source_store)
        finally:
            if not isinstance(source, CacheStore):
                source_store.close()

    def describe(self) -> dict:
        """Store parameters for reports and benchmark manifests."""
        return {"store": self.name}

    def close(self) -> None:
        """Release held resources (connections); idempotent."""


class MemoryStore(CacheStore):
    """Process-local dict store — today's cache semantics, the default.

    Args:
        max_entries: optional LRU bound; None keeps every entry
            (study-scale workloads are thousands of points of a few
            floats each, so unbounded is the sensible default).
    """

    name = "memory"

    def __init__(self, max_entries: int | None = None):
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ReproError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = max_entries
        from collections import OrderedDict

        self._entries: OrderedDict[str, dict[str, float]] = OrderedDict()
        self._meta: dict[str, EntryMeta] = {}

    def load(self, fingerprint: str) -> dict[str, float] | None:
        self.stats.round_trips += 1
        return self._load_entry(fingerprint)

    def _load_entry(self, fingerprint: str) -> dict[str, float] | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        self._entries.move_to_end(fingerprint)
        meta = self._meta[fingerprint]
        meta.last_used_at = time.time()
        meta.hits = (meta.hits or 0) + 1
        self.stats.loads += 1
        return dict(entry)

    def load_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        if not fingerprints:
            return {}
        self.stats.round_trips += 1
        out: dict[str, dict[str, float]] = {}
        for fingerprint in fingerprints:
            if fingerprint in out:
                continue
            responses = self._load_entry(fingerprint)
            if responses is not None:
                out[fingerprint] = responses
        return out

    def peek(self, fingerprint: str) -> dict[str, float] | None:
        self.stats.round_trips += 1
        entry = self._entries.get(fingerprint)
        return dict(entry) if entry is not None else None

    def persist_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        if not entries:
            return
        self.stats.round_trips += 1
        for fingerprint, responses in entries:
            self._persist_entry(fingerprint, responses, meta=None)

    def persist(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None = None,
    ) -> None:
        self.stats.round_trips += 1
        self._persist_entry(fingerprint, responses, meta=meta)

    def _persist_entry(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None,
    ) -> None:
        responses = dict(responses)
        self._entries[fingerprint] = responses
        self._entries.move_to_end(fingerprint)
        now = time.time()
        size = len(_encode_payload(fingerprint, responses))
        self._meta[fingerprint] = EntryMeta(
            fingerprint=fingerprint,
            created_at=meta.created_at if meta else now,
            last_used_at=(meta.last_used_at or meta.created_at)
            if meta
            else now,
            size_bytes=size,
            hits=(meta.hits or 0) if meta else 0,
        )
        self.stats.persists += 1
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._meta.pop(evicted, None)
                self.stats.evictions += 1

    def discard(self, fingerprint: str) -> bool:
        existed = self._entries.pop(fingerprint, None) is not None
        self._meta.pop(fingerprint, None)
        if existed:
            self.stats.invalidations += 1
        return existed

    def clear(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._meta.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        for fingerprint, responses in list(self._entries.items()):
            yield fingerprint, dict(responses)

    def entries(self) -> Iterator[EntryMeta]:
        for meta in list(self._meta.values()):
            yield EntryMeta(**meta.as_dict())

    def entry_meta(self, fingerprint: str) -> EntryMeta | None:
        meta = self._meta.get(fingerprint)
        return EntryMeta(**meta.as_dict()) if meta else None

    def verify(self, repair: bool = False) -> VerifyReport:
        # In-memory entries can only hold what persist() accepted, so
        # the scan reduces to counting them.
        report = VerifyReport(store=self.name)
        for meta in self._meta.values():
            report.scanned += 1
            report.valid += 1
            report.total_bytes += meta.size_bytes
        return report

    def describe(self) -> dict:
        return {"store": self.name, "max_entries": self.max_entries}


class FileStore(CacheStore):
    """One JSON blob per fingerprint under a directory.

    Writes go to a temporary file in the same directory and land via
    ``os.replace``, so a reader never observes a half-written blob and
    concurrent writers of the same fingerprint (which, evaluations
    being deterministic, carry identical payloads) simply race to an
    equivalent rename.  Loads tolerate corruption: an unparsable,
    mis-versioned or mismatched file is unlinked and treated as a
    miss.

    Metadata maps onto the filesystem: creation time is the blob's
    mtime (pinned via ``os.utime`` so export/merge can preserve it),
    last use is the atime (bumped explicitly on every served load —
    relatime mounts would otherwise freeze it), size is ``st_size``.
    Hit counts would need a write per hit, so they are None.

    A writer killed mid-``persist`` leaves a ``.write-*.part`` temp
    file behind.  Those are never entries: :meth:`items` and
    ``len()`` skip them, :meth:`partial_files` counts them, and
    :meth:`compact` sweeps the stale ones.

    Args:
        directory: store root; created if absent.
    """

    name = "file"
    _SUFFIX = ".json"
    _PART_SUFFIX = ".part"

    def __init__(self, directory: str | os.PathLike):
        super().__init__()
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create cache store directory {self.directory}: {error}"
            ) from error
        # mkstemp creates 0600 files; on a shared mount other users
        # must be able to read the blobs, so persisted entries get
        # ordinary umask-honouring permissions instead.
        umask = os.umask(0)
        os.umask(umask)
        self._blob_mode = 0o666 & ~umask

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}{self._SUFFIX}"

    @classmethod
    def _is_blob_name(cls, name: str) -> bool:
        return name.endswith(cls._SUFFIX) and not name.startswith(".")

    def load(self, fingerprint: str) -> dict[str, float] | None:
        self.stats.round_trips += 1
        path = self._path(fingerprint)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            # Any unreadable entry — absent, permissions, transient
            # I/O — is a plain miss: evaluations are deterministic,
            # so the engine just re-simulates.
            return None
        try:
            blob = json.loads(raw)
        except ValueError:
            blob = None
        responses = _validate_blob(blob, fingerprint)
        if responses is None:
            self._drop(path)
            return None
        self._touch_atime(path)
        self.stats.loads += 1
        return responses

    def load_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        if not fingerprints:
            return {}
        self.stats.round_trips += 1
        wanted: dict[str, str] = {}  # blob filename -> fingerprint
        order: list[str] = []
        for fingerprint in fingerprints:
            name = f"{fingerprint}{self._SUFFIX}"
            if name not in wanted:
                wanted[name] = fingerprint
                order.append(fingerprint)
        # One directory scan answers existence *and* metadata for the
        # whole batch: each hit below reuses the scan's cached stat
        # for its atime bump instead of re-statting the blob.
        found: dict[str, os.stat_result] = {}
        with os.scandir(self.directory) as dir_entries:
            for entry in dir_entries:
                fingerprint = wanted.get(entry.name)
                if fingerprint is None:
                    continue
                try:
                    found[fingerprint] = entry.stat()
                except OSError:  # pragma: no cover - raced away
                    continue
        out: dict[str, dict[str, float]] = {}
        for fingerprint in order:
            stat = found.get(fingerprint)
            if stat is None:
                continue
            path = self._path(fingerprint)
            try:
                raw = path.read_text(encoding="utf-8")
            except OSError:
                continue
            try:
                blob = json.loads(raw)
            except ValueError:
                blob = None
            responses = _validate_blob(blob, fingerprint)
            if responses is None:
                self._drop(path)
                continue
            try:
                os.utime(path, times=(time.time(), stat.st_mtime))
            except OSError:  # pragma: no cover - raced away
                pass
            self.stats.loads += 1
            self.stats.stats_saved += 1
            out[fingerprint] = responses
        return out

    def peek(self, fingerprint: str) -> dict[str, float] | None:
        self.stats.round_trips += 1
        path = self._path(fingerprint)
        try:
            stat = path.stat()
            raw = path.read_text(encoding="utf-8")
            # The read itself bumps atime on relatime mounts, and
            # atime *is* this store's last-used stamp — put it back
            # so inspection never counts as use.
            os.utime(path, times=(stat.st_atime, stat.st_mtime))
        except OSError:
            return None
        try:
            blob = json.loads(raw)
        except ValueError:
            return None
        return _validate_blob(blob, fingerprint)

    @staticmethod
    def _touch_atime(path: Path) -> None:
        """Record the load as the entry's last use (atime), keeping
        mtime — the creation stamp — intact."""
        try:
            stat = path.stat()
            os.utime(path, times=(time.time(), stat.st_mtime))
        except OSError:  # pragma: no cover - entry raced away
            pass

    def _drop(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing unlink is fine
            pass
        self.stats.invalidations += 1

    def persist(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None = None,
    ) -> None:
        self.stats.round_trips += 1
        self._persist_entry(fingerprint, responses, meta=meta)

    def persist_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        # Files have no transactions — the batch is still one round
        # trip of the store API, applied as per-entry atomic renames.
        if not entries:
            return
        self.stats.round_trips += 1
        for fingerprint, responses in entries:
            self._persist_entry(fingerprint, responses, meta=None)

    def _persist_entry(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None,
    ) -> None:
        blob = _encode_blob(fingerprint, responses)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".write-", suffix=self._PART_SUFFIX
            )
        except OSError as error:
            # Writes hit the filesystem's bad moods (ENOSPC, EIO, a
            # vanished mount) in a way reads never surface — reads
            # just miss.  Classify the failure as transient so retry
            # layers re-attempt it; the entry is re-simulable either
            # way, so nothing is ever lost to a dropped persist.
            raise TransientStoreError(
                f"cannot stage cache entry in {self.directory}: {error}"
            ) from error
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(blob, handle, sort_keys=True)
            os.chmod(tmp_name, self._blob_mode)
            if meta is not None and meta.created_at is not None:
                os.utime(
                    tmp_name,
                    times=(
                        meta.last_used_at or meta.created_at,
                        meta.created_at,
                    ),
                )
            os.replace(tmp_name, self._path(fingerprint))
        except BaseException as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(error, OSError):
                raise TransientStoreError(
                    f"cannot persist cache entry to {self.directory}: "
                    f"{error}"
                ) from error
            raise
        self.stats.persists += 1

    def discard(self, fingerprint: str) -> bool:
        try:
            self._path(fingerprint).unlink()
        except FileNotFoundError:
            return False
        self.stats.invalidations += 1
        return True

    def _blob_paths(self) -> list[Path]:
        return sorted(
            path
            for path in self.directory.iterdir()
            if self._is_blob_name(path.name)
        )

    @classmethod
    def _is_partial_name(cls, name: str) -> bool:
        # Only *writer debris* counts: our own mkstemp pattern and
        # anything ending in .part.  A foreign file in the directory
        # (a README, a .gitignore) is neither an entry nor ours to
        # sweep — it is ignored, never deleted.
        return name.endswith(cls._PART_SUFFIX) or name.startswith(".write-")

    def partial_files(self) -> list[Path]:
        """Temp/partial files left by killed writers — never served,
        never counted by ``len()``/``items()``, swept by
        :meth:`compact` once past the grace period."""
        return sorted(
            path
            for path in self.directory.iterdir()
            if path.is_file() and self._is_partial_name(path.name)
        )

    def clear(self) -> None:
        for path in self._blob_paths():
            self._drop(path)

    def __len__(self) -> int:
        # Unsorted scandir: len() runs on every stats() call, so keep
        # it one directory pass (the sort only matters for items()).
        count = 0
        with os.scandir(self.directory) as entries:
            for entry in entries:
                if self._is_blob_name(entry.name):
                    count += 1
        return count

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        for path in self._blob_paths():
            fingerprint = path.name[: -len(self._SUFFIX)]
            responses = self.load(fingerprint)
            if responses is not None:
                yield fingerprint, responses

    def entries(self) -> Iterator[EntryMeta]:
        for path in self._blob_paths():
            meta = self._stat_meta(path)
            if meta is not None:
                yield meta

    def entry_meta(self, fingerprint: str) -> EntryMeta | None:
        return self._stat_meta(self._path(fingerprint))

    def _stat_meta(self, path: Path) -> EntryMeta | None:
        try:
            stat = path.stat()
        except OSError:
            return None
        return EntryMeta(
            fingerprint=path.name[: -len(self._SUFFIX)],
            created_at=stat.st_mtime,
            # A fresh blob's atime can trail its mtime (utime in
            # persist writes them together, but copies may not);
            # last use is never before creation.
            last_used_at=max(stat.st_atime, stat.st_mtime),
            size_bytes=stat.st_size,
            hits=None,
        )

    def verify(self, repair: bool = False) -> VerifyReport:
        report = VerifyReport(store=self.name)
        for path in self._blob_paths():
            report.scanned += 1
            fingerprint = path.name[: -len(self._SUFFIX)]
            try:
                blob = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                blob = None
            if _validate_blob(blob, fingerprint) is None:
                report.invalid += 1
                if repair:
                    self._drop(path)
                    report.repaired += 1
            else:
                report.valid += 1
                try:
                    report.total_bytes += path.stat().st_size
                except OSError:  # pragma: no cover - raced away
                    pass
        report.partials = len(self.partial_files())
        return report

    def _compact(self, *, grace_seconds: float) -> CompactionReport:
        """Sweep leftovers a crashed writer cannot reclaim itself:
        temp/partial files and zero-byte blobs older than the grace
        period (younger ones may belong to a live writer).  Files
        matching neither the blob nor the partial pattern are foreign
        and left strictly alone."""
        report = CompactionReport(store=self.name)
        cutoff = time.time() - max(grace_seconds, 0.0)
        for path in self.partial_files():
            try:
                stat = path.stat()
                if stat.st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:  # pragma: no cover - raced away
                continue
            report.partials_removed += 1
            report.bytes_reclaimed += stat.st_size
        for path in self._blob_paths():
            try:
                stat = path.stat()
                if stat.st_size > 0 or stat.st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:  # pragma: no cover - raced away
                continue
            report.orphans_removed += 1
            self.stats.invalidations += 1
        return report

    def describe(self) -> dict:
        return {"store": self.name, "directory": str(self.directory)}


class SQLiteStore(CacheStore):
    """Single-file SQLite store, WAL mode, safe for concurrent writers.

    WAL journaling lets readers proceed under a writer; the busy
    timeout makes simultaneous commits from several processes queue
    instead of erroring.  A *corrupt* database (SQLite header present
    but unreadable) is deleted and recreated — the store holds
    nothing that cannot be re-simulated — but a foreign file at the
    path (no SQLite header) is refused, never deleted: that is a
    mistyped path, not a cache artefact.

    Rows carry lifecycle columns (created/last-used timestamps, hit
    count, payload size); databases written before those columns
    existed are migrated in place on open.  Served loads bump the hit
    count and last-use stamp best-effort — a locked database never
    turns a hit into a failure.

    Args:
        path: database file; parent directories are created.
        timeout: seconds a writer waits on a locked database.
    """

    name = "sqlite"

    _SQLITE_MAGIC = b"SQLite format 3\x00"

    #: Lifecycle columns added to databases created before they
    #: existed (PRAGMA table_info drives the in-place migration).
    _LIFECYCLE_COLUMNS = (
        ("created_at", "REAL NOT NULL DEFAULT 0"),
        ("last_used_at", "REAL NOT NULL DEFAULT 0"),
        ("hits", "INTEGER NOT NULL DEFAULT 0"),
        ("size_bytes", "INTEGER NOT NULL DEFAULT 0"),
    )

    def __init__(self, path: str | os.PathLike, timeout: float = 30.0):
        super().__init__()
        self.path = Path(path)
        self.timeout = float(timeout)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create cache store directory "
                f"{self.path.parent}: {error}"
            ) from error
        self._closed = False
        try:
            self._conn = self._open()
        except sqlite3.OperationalError:
            # Environmental, not corruption: locked past the busy
            # timeout, permissions, disk full.  The database may be
            # live under another process — never delete it for this.
            raise
        except sqlite3.DatabaseError as error:
            if not self._is_rebuildable():
                raise ReproError(
                    f"{self.path} exists but is not a SQLite database "
                    f"({error}); refusing to replace a file this store "
                    "did not create — point the store elsewhere or "
                    "remove the file yourself"
                ) from error
            # Corrupt database: rebuild from nothing rather than fail
            # the study over a cache artefact.
            self._remove_database_files()
            self.stats.invalidations += 1
            self._conn = self._open()

    def _is_rebuildable(self) -> bool:
        """Only ever delete what was plausibly this store's own file:
        an empty/absent file or one carrying the SQLite header."""
        try:
            with open(self.path, "rb") as handle:
                header = handle.read(len(self._SQLITE_MAGIC))
        except FileNotFoundError:
            return True
        except OSError:
            return False
        return header == b"" or header == self._SQLITE_MAGIC

    def _open(self) -> sqlite3.Connection:
        conn = connect_wal(self.path, timeout=self.timeout)
        try:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS evaluations ("
                " fingerprint TEXT PRIMARY KEY,"
                " schema_version INTEGER NOT NULL,"
                " payload TEXT NOT NULL,"
                + ", ".join(
                    f" {name} {spec}"
                    for name, spec in self._LIFECYCLE_COLUMNS
                )
                + ")"
            )
            self._migrate_lifecycle_columns(conn)
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _migrate_lifecycle_columns(self, conn: sqlite3.Connection) -> None:
        """Bring a pre-lifecycle database up to the current table
        shape without invalidating its (perfectly good) entries."""
        present = {
            row[1]
            for row in conn.execute("PRAGMA table_info(evaluations)")
        }
        migrated = False
        for name, spec in self._LIFECYCLE_COLUMNS:
            if name not in present:
                conn.execute(
                    f"ALTER TABLE evaluations ADD COLUMN {name} {spec}"
                )
                migrated = True
        if migrated:
            conn.execute(
                "UPDATE evaluations SET created_at = ?,"
                " last_used_at = ?, size_bytes = length(payload)"
                " WHERE created_at = 0",
                (time.time(), time.time()),
            )

    def _remove_database_files(self) -> None:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except OSError:
                pass

    def load(self, fingerprint: str) -> dict[str, float] | None:
        self.stats.round_trips += 1
        row = self._conn.execute(
            "SELECT schema_version, payload FROM evaluations"
            " WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        responses = self._decode_row(fingerprint, row)
        if responses is None:
            self.discard(fingerprint)
            return None
        # Usage tracking is best-effort and must never stall a hit:
        # a writer holding the database for longer than a blink
        # (batch persist, VACUUM from another process) forfeits this
        # bump rather than blocking the read path for the full busy
        # timeout.
        try:
            self._conn.execute("PRAGMA busy_timeout=100")
            try:
                with self._conn:
                    self._conn.execute(
                        "UPDATE evaluations SET last_used_at = ?,"
                        " hits = hits + 1 WHERE fingerprint = ?",
                        (time.time(), fingerprint),
                    )
            finally:
                self._conn.execute(
                    f"PRAGMA busy_timeout={int(self.timeout * 1000)}"
                )
        except sqlite3.Error:  # pragma: no cover - tracking is best-effort
            pass
        self.stats.loads += 1
        return responses

    def load_many(
        self, fingerprints: Sequence[str]
    ) -> dict[str, dict[str, float]]:
        if not fingerprints:
            return {}
        self.stats.round_trips += 1
        order = list(dict.fromkeys(fingerprints))
        rows: dict[str, tuple[int, str]] = {}
        # Chunk the IN list well under SQLite's host-parameter cap.
        for start in range(0, len(order), 500):
            chunk = order[start : start + 500]
            marks = ",".join("?" * len(chunk))
            for fingerprint, schema_version, payload in self._conn.execute(
                "SELECT fingerprint, schema_version, payload"
                f" FROM evaluations WHERE fingerprint IN ({marks})",
                chunk,
            ):
                rows[fingerprint] = (schema_version, payload)
        out: dict[str, dict[str, float]] = {}
        for fingerprint in order:
            row = rows.get(fingerprint)
            if row is None:
                continue
            responses = self._decode_row(fingerprint, row)
            if responses is None:
                self.discard(fingerprint)
                continue
            out[fingerprint] = responses
        if out:
            # Same best-effort usage tracking as load(), one
            # transaction for the whole batch.
            try:
                self._conn.execute("PRAGMA busy_timeout=100")
                try:
                    now = time.time()
                    with self._conn:
                        self._conn.executemany(
                            "UPDATE evaluations SET last_used_at = ?,"
                            " hits = hits + 1 WHERE fingerprint = ?",
                            [(now, fingerprint) for fingerprint in out],
                        )
                finally:
                    self._conn.execute(
                        f"PRAGMA busy_timeout={int(self.timeout * 1000)}"
                    )
            except sqlite3.Error:  # pragma: no cover - best-effort
                pass
            self.stats.loads += len(out)
        return out

    def peek(self, fingerprint: str) -> dict[str, float] | None:
        self.stats.round_trips += 1
        row = self._conn.execute(
            "SELECT schema_version, payload FROM evaluations"
            " WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        return self._decode_row(fingerprint, row)

    @staticmethod
    def _decode_row(
        fingerprint: str, row: tuple[int, str]
    ) -> dict[str, float] | None:
        schema_version, payload = row
        if schema_version != SCHEMA_VERSION:
            return None
        try:
            blob = json.loads(payload)
        except ValueError:
            return None
        return _validate_blob(blob, fingerprint)

    _INSERT_SQL = (
        "INSERT OR REPLACE INTO evaluations"
        " (fingerprint, schema_version, payload, created_at,"
        "  last_used_at, hits, size_bytes)"
        " VALUES (?, ?, ?, ?, ?, ?, ?)"
    )

    @staticmethod
    def _encode_row(
        fingerprint: str,
        responses: Mapping[str, float],
        meta: EntryMeta | None,
    ) -> tuple:
        payload = _encode_payload(fingerprint, responses)
        now = time.time()
        created = meta.created_at if meta and meta.created_at else now
        last_used = (
            meta.last_used_at or meta.created_at
            if meta
            else now
        ) or now
        hits = (meta.hits or 0) if meta else 0
        return (
            fingerprint,
            SCHEMA_VERSION,
            payload,
            created,
            last_used,
            hits,
            len(payload),
        )

    def persist(
        self,
        fingerprint: str,
        responses: Mapping[str, float],
        *,
        meta: EntryMeta | None = None,
    ) -> None:
        self.stats.round_trips += 1
        row = self._encode_row(fingerprint, responses, meta)
        with self._write_guard("persist"), self._conn:
            self._conn.execute(self._INSERT_SQL, row)
        self.stats.persists += 1

    def persist_many(
        self, entries: Sequence[tuple[str, Mapping[str, float]]]
    ) -> None:
        if not entries:
            return
        self.stats.round_trips += 1
        rows = [
            self._encode_row(fingerprint, responses, None)
            for fingerprint, responses in entries
        ]
        # One transaction for the whole batch; INSERT OR REPLACE
        # applies rows in order, so duplicate fingerprints resolve
        # last-wins exactly like repeated persist() calls.
        with self._write_guard("persist_many"), self._conn:
            self._conn.executemany(self._INSERT_SQL, rows)
        self.stats.persists += len(rows)

    @contextmanager
    def _write_guard(self, op: str):
        """Reclassify lock contention that outlasts the busy timeout
        as :class:`TransientStoreError` — the database is healthy,
        another writer is just holding it, and retry layers should
        treat the write as re-attemptable rather than fatal."""
        try:
            yield
        except sqlite3.OperationalError as error:
            if is_transient(error):
                raise TransientStoreError(
                    f"sqlite store busy during {op} on {self.path}: "
                    f"{error}"
                ) from error
            raise

    def discard(self, fingerprint: str) -> bool:
        with self._write_guard("discard"), self._conn:
            cursor = self._conn.execute(
                "DELETE FROM evaluations WHERE fingerprint = ?",
                (fingerprint,),
            )
        if cursor.rowcount > 0:
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        with self._write_guard("clear"), self._conn:
            cursor = self._conn.execute("DELETE FROM evaluations")
        self.stats.invalidations += max(cursor.rowcount, 0)

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM evaluations"
        ).fetchone()
        return int(row[0])

    def __contains__(self, fingerprint: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM evaluations WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return row is not None

    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        rows = self._conn.execute(
            "SELECT fingerprint, schema_version, payload FROM evaluations"
            " ORDER BY fingerprint"
        ).fetchall()
        for fingerprint, schema_version, payload in rows:
            responses = self._decode_row(
                fingerprint, (schema_version, payload)
            )
            if responses is not None:
                yield fingerprint, responses

    def entries(self) -> Iterator[EntryMeta]:
        rows = self._conn.execute(
            "SELECT fingerprint, created_at, last_used_at, hits,"
            " size_bytes FROM evaluations ORDER BY fingerprint"
        ).fetchall()
        for fingerprint, created, last_used, hits, size in rows:
            yield EntryMeta(
                fingerprint=fingerprint,
                created_at=created or None,
                last_used_at=(last_used or created) or None,
                size_bytes=int(size or 0),
                hits=int(hits or 0),
            )

    def entry_meta(self, fingerprint: str) -> EntryMeta | None:
        row = self._conn.execute(
            "SELECT created_at, last_used_at, hits, size_bytes"
            " FROM evaluations WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        created, last_used, hits, size = row
        return EntryMeta(
            fingerprint=fingerprint,
            created_at=created or None,
            last_used_at=(last_used or created) or None,
            size_bytes=int(size or 0),
            hits=int(hits or 0),
        )

    def total_bytes(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(size_bytes), 0) FROM evaluations"
        ).fetchone()
        return int(row[0])

    def verify(self, repair: bool = False) -> VerifyReport:
        report = VerifyReport(store=self.name)
        rows = self._conn.execute(
            "SELECT fingerprint, schema_version, payload, size_bytes"
            " FROM evaluations"
        ).fetchall()
        for fingerprint, schema_version, payload, size in rows:
            report.scanned += 1
            if self._decode_row(fingerprint, (schema_version, payload)) is None:
                report.invalid += 1
                if repair and self.discard(fingerprint):
                    report.repaired += 1
            else:
                report.valid += 1
                report.total_bytes += int(size or len(payload))
        return report

    def _compact(self, *, grace_seconds: float) -> CompactionReport:
        """Checkpoint the WAL and VACUUM the database back to its
        live size (deleted rows only return pages to SQLite's free
        list; the file itself shrinks here)."""
        report = CompactionReport(store=self.name)
        before = self._database_bytes()
        self._conn.commit()
        previous = self._conn.isolation_level
        try:
            # VACUUM refuses to run inside a transaction; autocommit
            # mode for the duration keeps sqlite3 from opening one.
            self._conn.isolation_level = None
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            self._conn.execute("VACUUM")
        finally:
            self._conn.isolation_level = previous
        report.bytes_reclaimed = max(before - self._database_bytes(), 0)
        return report

    def _database_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal"):
            try:
                total += os.stat(f"{self.path}{suffix}").st_size
            except OSError:
                pass
        return total

    def describe(self) -> dict:
        return {
            "store": self.name,
            "path": str(self.path),
            "timeout": self.timeout,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()

    # sqlite3 connections cannot pickle, but the store must: spawn
    # start methods pickle the evaluator graph (toolkit -> engine ->
    # cache -> store) into every worker.  Ship the path, reconnect on
    # arrival.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_conn"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._closed = False
        self._conn = self._open()


#: File suffixes that make :func:`resolve_store` pick SQLite for a path.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def resolve_store(
    spec: CacheStore | str | os.PathLike | None,
    max_entries: int | None = None,
) -> CacheStore:
    """Build a store from a spec, or pass a ready one through.

    * None — a :class:`MemoryStore` (honouring ``max_entries``).
    * A path ending in ``.sqlite`` / ``.sqlite3`` / ``.db`` — a
      :class:`SQLiteStore` on that file.
    * Any other path — a :class:`FileStore` on that directory (no
      string is treated as a sentinel: ``"memory"`` is the directory
      ``./memory``, construct :class:`MemoryStore` explicitly for the
      in-memory behaviour).
    """
    if isinstance(spec, CacheStore):
        if max_entries is not None:
            raise ReproError(
                "max_entries cannot be applied to a ready store; "
                "bound the store itself"
            )
        return spec
    if spec is None:
        return MemoryStore(max_entries=max_entries)
    if max_entries is not None:
        raise ReproError(
            "max_entries applies to the in-memory store only; "
            f"got a persistent store spec {spec!r}"
        )
    path = Path(spec)
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return SQLiteStore(path)
    return FileStore(path)
