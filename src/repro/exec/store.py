"""Pluggable storage behind the evaluation cache.

:class:`~repro.exec.cache.EvalCache` fronts a :class:`CacheStore` — the
seam the ROADMAP names for sharing evaluations beyond one process.
Three stores ship:

* :class:`MemoryStore` — the process-local ``OrderedDict`` semantics
  the cache has always had (LRU-bounded when asked); the default.
* :class:`FileStore` — one JSON blob per fingerprint in a directory,
  written via atomic rename, so independent processes (CI jobs, hosts
  sharing a network mount) can populate and read one store without
  coordination.
* :class:`SQLiteStore` — a single-file database in WAL mode with a
  busy timeout, safe for concurrent writers on one filesystem.

Every persisted blob is versioned (:data:`SCHEMA_VERSION`) and
self-identifying (it records its own fingerprint).  Loads are
corruption-tolerant: an unreadable, mis-versioned or mismatched entry
is dropped and counted as an invalidation, never raised — evaluations
are deterministic, so re-simulating a lost point is always correct.

Store traffic (loads, persists, invalidations, evictions) is tracked
in :class:`StoreStats` and mirrored into the fronting cache's
:class:`~repro.exec.cache.CacheStats`, so ``study.report()`` and the
benchmark manifests see one merged picture.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.errors import ReproError

#: On-disk schema version shared by every persistent store.  Bump it
#: whenever the fingerprint canonicalization or the blob layout
#: changes; old entries then invalidate themselves on load instead of
#: serving stale responses.
SCHEMA_VERSION = 1


@dataclass
class StoreStats:
    """Traffic counters of one store (store-lifetime, monotonic).

    Attributes:
        loads: lookups answered from storage.
        persists: evaluations written to storage.
        invalidations: entries dropped — corrupt payloads, schema
            mismatches, explicit discards and clears.
        evictions: entries displaced by a capacity bound (memory
            store only).
    """

    loads: int = 0
    persists: int = 0
    invalidations: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "loads": self.loads,
            "persists": self.persists,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }


def _validate_blob(blob: object, fingerprint: str) -> dict[str, float] | None:
    """Responses from a persisted blob, or None if it cannot be trusted."""
    if not isinstance(blob, dict):
        return None
    if blob.get("schema") != SCHEMA_VERSION:
        return None
    if blob.get("fingerprint") != fingerprint:
        return None
    responses = blob.get("responses")
    if not isinstance(responses, dict):
        return None
    out: dict[str, float] = {}
    for name, value in responses.items():
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            return None
        out[name] = float(value)
    return out


def _encode_blob(fingerprint: str, responses: Mapping[str, float]) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "responses": {str(k): float(v) for k, v in responses.items()},
    }


class CacheStore(ABC):
    """Where evaluation-cache entries live.

    The contract is a string-keyed blob map with deterministic values:
    ``persist`` may be called repeatedly for one fingerprint (always
    with an identical payload, evaluations being pure), ``load``
    returns None for anything absent or untrustworthy, and no method
    raises for data-level problems — a store that cannot answer simply
    misses and the engine re-simulates.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = StoreStats()

    @abstractmethod
    def load(self, fingerprint: str) -> dict[str, float] | None:
        """Responses persisted under a fingerprint, or None."""

    @abstractmethod
    def persist(self, fingerprint: str, responses: Mapping[str, float]) -> None:
        """Durably associate responses with a fingerprint."""

    @abstractmethod
    def discard(self, fingerprint: str) -> bool:
        """Drop one entry; True if it existed."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    @abstractmethod
    def __contains__(self, fingerprint: str) -> bool:
        """Entry presence without counting a load."""

    @abstractmethod
    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        """Iterate valid ``(fingerprint, responses)`` pairs.

        Used for inspection and store-to-store migration (e.g. seeding
        a :class:`SQLiteStore` from a :class:`FileStore` directory).
        """

    def describe(self) -> dict:
        """Store parameters for reports and benchmark manifests."""
        return {"store": self.name}

    def close(self) -> None:
        """Release held resources (connections); idempotent."""


class MemoryStore(CacheStore):
    """Process-local dict store — today's cache semantics, the default.

    Args:
        max_entries: optional LRU bound; None keeps every entry
            (study-scale workloads are thousands of points of a few
            floats each, so unbounded is the sensible default).
    """

    name = "memory"

    def __init__(self, max_entries: int | None = None):
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ReproError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = max_entries
        from collections import OrderedDict

        self._entries: OrderedDict[str, dict[str, float]] = OrderedDict()

    def load(self, fingerprint: str) -> dict[str, float] | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.loads += 1
        return dict(entry)

    def persist(self, fingerprint: str, responses: Mapping[str, float]) -> None:
        self._entries[fingerprint] = dict(responses)
        self._entries.move_to_end(fingerprint)
        self.stats.persists += 1
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def discard(self, fingerprint: str) -> bool:
        existed = self._entries.pop(fingerprint, None) is not None
        if existed:
            self.stats.invalidations += 1
        return existed

    def clear(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        for fingerprint, responses in list(self._entries.items()):
            yield fingerprint, dict(responses)

    def describe(self) -> dict:
        return {"store": self.name, "max_entries": self.max_entries}


class FileStore(CacheStore):
    """One JSON blob per fingerprint under a directory.

    Writes go to a temporary file in the same directory and land via
    ``os.replace``, so a reader never observes a half-written blob and
    concurrent writers of the same fingerprint (which, evaluations
    being deterministic, carry identical payloads) simply race to an
    equivalent rename.  Loads tolerate corruption: an unparsable,
    mis-versioned or mismatched file is unlinked and treated as a
    miss.

    Args:
        directory: store root; created if absent.
    """

    name = "file"
    _SUFFIX = ".json"

    def __init__(self, directory: str | os.PathLike):
        super().__init__()
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create cache store directory {self.directory}: {error}"
            ) from error
        # mkstemp creates 0600 files; on a shared mount other users
        # must be able to read the blobs, so persisted entries get
        # ordinary umask-honouring permissions instead.
        umask = os.umask(0)
        os.umask(umask)
        self._blob_mode = 0o666 & ~umask

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}{self._SUFFIX}"

    def load(self, fingerprint: str) -> dict[str, float] | None:
        path = self._path(fingerprint)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            # Any unreadable entry — absent, permissions, transient
            # I/O — is a plain miss: evaluations are deterministic,
            # so the engine just re-simulates.
            return None
        try:
            blob = json.loads(raw)
        except ValueError:
            blob = None
        responses = _validate_blob(blob, fingerprint)
        if responses is None:
            self._drop(path)
            return None
        self.stats.loads += 1
        return responses

    def _drop(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing unlink is fine
            pass
        self.stats.invalidations += 1

    def persist(self, fingerprint: str, responses: Mapping[str, float]) -> None:
        blob = _encode_blob(fingerprint, responses)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".write-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(blob, handle, sort_keys=True)
            os.chmod(tmp_name, self._blob_mode)
            os.replace(tmp_name, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.persists += 1

    def discard(self, fingerprint: str) -> bool:
        try:
            self._path(fingerprint).unlink()
        except FileNotFoundError:
            return False
        self.stats.invalidations += 1
        return True

    def _blob_paths(self) -> list[Path]:
        return sorted(
            path
            for path in self.directory.glob(f"*{self._SUFFIX}")
            if not path.name.startswith(".")
        )

    def clear(self) -> None:
        for path in self._blob_paths():
            self._drop(path)

    def __len__(self) -> int:
        # Unsorted scandir: len() runs on every stats() call, so keep
        # it one directory pass (the sort only matters for items()).
        count = 0
        with os.scandir(self.directory) as entries:
            for entry in entries:
                if entry.name.endswith(self._SUFFIX) and not (
                    entry.name.startswith(".")
                ):
                    count += 1
        return count

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        for path in self._blob_paths():
            fingerprint = path.name[: -len(self._SUFFIX)]
            responses = self.load(fingerprint)
            if responses is not None:
                yield fingerprint, responses

    def describe(self) -> dict:
        return {"store": self.name, "directory": str(self.directory)}


class SQLiteStore(CacheStore):
    """Single-file SQLite store, WAL mode, safe for concurrent writers.

    WAL journaling lets readers proceed under a writer; the busy
    timeout makes simultaneous commits from several processes queue
    instead of erroring.  A *corrupt* database (SQLite header present
    but unreadable) is deleted and recreated — the store holds
    nothing that cannot be re-simulated — but a foreign file at the
    path (no SQLite header) is refused, never deleted: that is a
    mistyped path, not a cache artefact.

    Args:
        path: database file; parent directories are created.
        timeout: seconds a writer waits on a locked database.
    """

    name = "sqlite"

    _SQLITE_MAGIC = b"SQLite format 3\x00"

    def __init__(self, path: str | os.PathLike, timeout: float = 30.0):
        super().__init__()
        self.path = Path(path)
        self.timeout = float(timeout)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create cache store directory "
                f"{self.path.parent}: {error}"
            ) from error
        self._closed = False
        try:
            self._conn = self._open()
        except sqlite3.OperationalError:
            # Environmental, not corruption: locked past the busy
            # timeout, permissions, disk full.  The database may be
            # live under another process — never delete it for this.
            raise
        except sqlite3.DatabaseError as error:
            if not self._is_rebuildable():
                raise ReproError(
                    f"{self.path} exists but is not a SQLite database "
                    f"({error}); refusing to replace a file this store "
                    "did not create — point the store elsewhere or "
                    "remove the file yourself"
                ) from error
            # Corrupt database: rebuild from nothing rather than fail
            # the study over a cache artefact.
            self._remove_database_files()
            self.stats.invalidations += 1
            self._conn = self._open()

    def _is_rebuildable(self) -> bool:
        """Only ever delete what was plausibly this store's own file:
        an empty/absent file or one carrying the SQLite header."""
        try:
            with open(self.path, "rb") as handle:
                header = handle.read(len(self._SQLITE_MAGIC))
        except FileNotFoundError:
            return True
        except OSError:
            return False
        return header == b"" or header == self._SQLITE_MAGIC

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=self.timeout)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS evaluations ("
                " fingerprint TEXT PRIMARY KEY,"
                " schema_version INTEGER NOT NULL,"
                " payload TEXT NOT NULL)"
            )
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _remove_database_files(self) -> None:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except OSError:
                pass

    def load(self, fingerprint: str) -> dict[str, float] | None:
        row = self._conn.execute(
            "SELECT schema_version, payload FROM evaluations"
            " WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        responses = self._decode_row(fingerprint, row)
        if responses is None:
            self.discard(fingerprint)
            return None
        self.stats.loads += 1
        return responses

    @staticmethod
    def _decode_row(
        fingerprint: str, row: tuple[int, str]
    ) -> dict[str, float] | None:
        schema_version, payload = row
        if schema_version != SCHEMA_VERSION:
            return None
        try:
            blob = json.loads(payload)
        except ValueError:
            return None
        return _validate_blob(blob, fingerprint)

    def persist(self, fingerprint: str, responses: Mapping[str, float]) -> None:
        payload = json.dumps(
            _encode_blob(fingerprint, responses), sort_keys=True
        )
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO evaluations"
                " (fingerprint, schema_version, payload) VALUES (?, ?, ?)",
                (fingerprint, SCHEMA_VERSION, payload),
            )
        self.stats.persists += 1

    def discard(self, fingerprint: str) -> bool:
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM evaluations WHERE fingerprint = ?",
                (fingerprint,),
            )
        if cursor.rowcount > 0:
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        with self._conn:
            cursor = self._conn.execute("DELETE FROM evaluations")
        self.stats.invalidations += max(cursor.rowcount, 0)

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM evaluations"
        ).fetchone()
        return int(row[0])

    def __contains__(self, fingerprint: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM evaluations WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return row is not None

    def items(self) -> Iterator[tuple[str, dict[str, float]]]:
        rows = self._conn.execute(
            "SELECT fingerprint, schema_version, payload FROM evaluations"
            " ORDER BY fingerprint"
        ).fetchall()
        for fingerprint, schema_version, payload in rows:
            responses = self._decode_row(
                fingerprint, (schema_version, payload)
            )
            if responses is not None:
                yield fingerprint, responses

    def describe(self) -> dict:
        return {
            "store": self.name,
            "path": str(self.path),
            "timeout": self.timeout,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()

    # sqlite3 connections cannot pickle, but the store must: spawn
    # start methods pickle the evaluator graph (toolkit -> engine ->
    # cache -> store) into every worker.  Ship the path, reconnect on
    # arrival.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_conn"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._closed = False
        self._conn = self._open()


#: File suffixes that make :func:`resolve_store` pick SQLite for a path.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def resolve_store(
    spec: CacheStore | str | os.PathLike | None,
    max_entries: int | None = None,
) -> CacheStore:
    """Build a store from a spec, or pass a ready one through.

    * None — a :class:`MemoryStore` (honouring ``max_entries``).
    * A path ending in ``.sqlite`` / ``.sqlite3`` / ``.db`` — a
      :class:`SQLiteStore` on that file.
    * Any other path — a :class:`FileStore` on that directory (no
      string is treated as a sentinel: ``"memory"`` is the directory
      ``./memory``, construct :class:`MemoryStore` explicitly for the
      in-memory behaviour).
    """
    if isinstance(spec, CacheStore):
        if max_entries is not None:
            raise ReproError(
                "max_entries cannot be applied to a ready store; "
                "bound the store itself"
            )
        return spec
    if spec is None:
        return MemoryStore(max_entries=max_entries)
    if max_entries is not None:
        raise ReproError(
            "max_entries applies to the in-memory store only; "
            f"got a persistent store spec {spec!r}"
        )
    path = Path(spec)
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return SQLiteStore(path)
    return FileStore(path)
