"""``repro-cache`` — operator CLI over persistent evaluation stores.

A long-lived deployment's cache is an operational artefact: it grows
without bound, it gets shipped between hosts, and when something looks
wrong an operator needs to inspect it without writing Python.  This
CLI surfaces the :mod:`repro.exec.lifecycle` layer over any store
:func:`~repro.exec.store.resolve_store` understands — a
file-per-fingerprint directory or a ``.sqlite``/``.db`` database —
with one uniform command set::

    python -m repro.exec.cli stats  ~/evals
    python -m repro.exec.cli ls     ~/evals --sort size --limit 20
    python -m repro.exec.cli show   ~/evals 3f2a9c
    python -m repro.exec.cli prune  ~/evals --max-bytes 512MB --policy lru
    python -m repro.exec.cli vacuum ~/evals.sqlite
    python -m repro.exec.cli export ~/evals /mnt/share/evals.sqlite
    python -m repro.exec.cli merge  ~/evals /mnt/share/other-host
    python -m repro.exec.cli verify ~/evals --repair
    python -m repro.exec.cli queue stats   ~/evals
    python -m repro.exec.cli queue stats   ~/evals --watch 2
    python -m repro.exec.cli queue ls      ~/evals --status failed
    python -m repro.exec.cli queue requeue ~/evals --failed --expired

The ``queue`` family inspects and repairs the distributed work queue
co-located with a store (see :mod:`repro.exec.queue`): ``stats``
counts jobs by status (exit 2 when failed jobs remain, so CI can
gate; ``--watch SECONDS`` re-samples until interrupted for observing
queue depth while a campaign round drains across workers), ``ls``
lists job rows, and ``requeue`` returns failed / lease-expired /
named jobs to pending for the next worker.

(Installed as the ``repro-cache`` console script; ``python -m
repro.exec.cli`` always works from a checkout.)  Every subcommand
accepts ``--json`` for machine-readable output.  ``verify`` exits 0
on a clean store and 2 when problems remain, so CI can gate on it.

Sizes accept ``k``/``M``/``G`` suffixes (binary, e.g. ``512MB`` =
512*1024² bytes); durations accept ``s``/``m``/``h``/``d``/``w``
(e.g. ``--max-age 7d``).
"""

from __future__ import annotations

import argparse
import json
import sqlite3
import sys
import time
from datetime import datetime
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.exec.lifecycle import GCBudget, POLICIES, collect
from repro.exec.queue import JOB_STATUSES, WorkQueue, resolve_queue
from repro.exec.store import CacheStore, FileStore, resolve_store
from repro.obs.dashboard import render_dashboard
from repro.obs.fleet import FleetSample, sample_fleet

PROG = "repro-cache"

_SIZE_SUFFIXES = {
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
    "b": 1,
}

_DURATION_SUFFIXES = {
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "w": 7 * 86400.0,
}


def parse_bytes(text: str) -> int:
    """``"500"``, ``"512k"``, ``"100MB"``, ``"2GiB"`` -> bytes."""
    cleaned = text.strip().lower()
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)].strip()
            try:
                return int(float(number) * _SIZE_SUFFIXES[suffix])
            except ValueError:
                break
    try:
        return int(cleaned)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse size {text!r}; try e.g. 512k, 100MB, 2GiB"
        ) from None


def parse_duration(text: str) -> float:
    """``"90"``, ``"90s"``, ``"15m"``, ``"12h"``, ``"7d"`` -> seconds."""
    cleaned = text.strip().lower()
    suffix = cleaned[-1:] if cleaned else ""
    if suffix in _DURATION_SUFFIXES:
        number = cleaned[:-1].strip()
        try:
            return float(number) * _DURATION_SUFFIXES[suffix]
        except ValueError:
            pass
    else:
        try:
            return float(cleaned)
        except ValueError:
            pass
    raise argparse.ArgumentTypeError(
        f"cannot parse duration {text!r}; try e.g. 90s, 15m, 12h, 7d"
    )


def _fmt_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return (
                f"{int(value)} {unit}"
                if unit == "B"
                else f"{value:.1f} {unit}"
            )
        value /= 1024.0
    return f"{count} B"  # pragma: no cover - unreachable


def _fmt_stamp(stamp: float | None) -> str:
    if not stamp:
        return "-"
    return datetime.fromtimestamp(stamp).strftime("%Y-%m-%d %H:%M:%S")


class CliError(Exception):
    """Operator-facing failure; message printed to stderr, exit 1."""


def _open_store(spec: str) -> CacheStore:
    """Resolve a CLI store argument; a mistyped path must error, not
    spring a fresh empty store into existence.  (Only ``export``
    creates stores, and its destination goes through ``export_to``.)"""
    path = Path(spec)
    if not path.exists():
        raise CliError(
            f"no store at {spec!r} (a directory or *.sqlite/*.db file); "
            f"pass an existing store"
        )
    try:
        return resolve_store(spec)
    except ReproError as error:
        raise CliError(str(error)) from error


def _emit(args: argparse.Namespace, payload: dict, text: list[str]) -> None:
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in text:
            print(line)


# -- subcommands ---------------------------------------------------------------


def _cmd_stats(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    try:
        metas = list(store.entries())
        total = sum(meta.size_bytes for meta in metas)
        created = [m.created_at for m in metas if m.created_at]
        used = [m.last_used_at for m in metas if m.last_used_at]
        hits = [m.hits for m in metas if m.hits is not None]
        partials = (
            len(store.partial_files())
            if isinstance(store, FileStore)
            else 0
        )
        payload = {
            **store.describe(),
            "entries": len(metas),
            "total_bytes": total,
            "partial_files": partials,
            "oldest_created": min(created) if created else None,
            "newest_created": max(created) if created else None,
            "last_used": max(used) if used else None,
            "total_hits": sum(hits) if hits else None,
        }
        text = [
            f"store:     {store.name} @ {args.store}",
            f"entries:   {len(metas)} ({_fmt_bytes(total)})",
            f"partials:  {partials}",
            f"created:   {_fmt_stamp(payload['oldest_created'])} .. "
            f"{_fmt_stamp(payload['newest_created'])}",
            f"last used: {_fmt_stamp(payload['last_used'])}",
        ]
        if hits:
            text.append(f"hits:      {sum(hits)}")
        _emit(args, payload, text)
        return 0
    finally:
        store.close()


_LS_KEYS: dict[str, Callable] = {
    "fingerprint": lambda m: m.fingerprint,
    "created": lambda m: m.created_at or 0.0,
    "used": lambda m: m.last_used_at or 0.0,
    "size": lambda m: m.size_bytes,
    "hits": lambda m: m.hits or 0,
}


def _cmd_ls(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    try:
        metas = sorted(
            store.entries(), key=_LS_KEYS[args.sort], reverse=args.reverse
        )
        if args.limit:
            metas = metas[: args.limit]
        payload = {"entries": [meta.as_dict() for meta in metas]}
        text = [
            f"{'fingerprint':16}  {'size':>10}  {'created':19}  "
            f"{'last used':19}  hits"
        ]
        for meta in metas:
            hits = "-" if meta.hits is None else str(meta.hits)
            text.append(
                f"{meta.fingerprint[:16]:16}  "
                f"{_fmt_bytes(meta.size_bytes):>10}  "
                f"{_fmt_stamp(meta.created_at):19}  "
                f"{_fmt_stamp(meta.last_used_at):19}  {hits}"
            )
        _emit(args, payload, text)
        return 0
    finally:
        store.close()


def _resolve_prefix(store: CacheStore, prefix: str) -> str:
    matches = [
        meta.fingerprint
        for meta in store.entries()
        if meta.fingerprint.startswith(prefix)
    ]
    if not matches:
        raise CliError(f"no entry matches fingerprint prefix {prefix!r}")
    if len(matches) > 1:
        raise CliError(
            f"fingerprint prefix {prefix!r} is ambiguous "
            f"({len(matches)} matches); give more characters"
        )
    return matches[0]


def _cmd_show(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    try:
        fingerprint = _resolve_prefix(store, args.fingerprint)
        # peek, not load: inspecting an entry must neither promote it
        # under LRU (hits/recency) nor drop it if it turns out to be
        # corrupt — that is verify --repair's explicit job.
        responses = store.peek(fingerprint)
        if responses is None:
            raise CliError(
                f"entry {fingerprint} fails validation; run "
                f"`verify --repair` to drop it"
            )
        meta = store.entry_meta(fingerprint)
        payload = {
            "meta": meta.as_dict() if meta else {"fingerprint": fingerprint},
            "responses": responses,
        }
        text = [f"fingerprint: {fingerprint}"]
        if meta:
            text += [
                f"created:     {_fmt_stamp(meta.created_at)}",
                f"last used:   {_fmt_stamp(meta.last_used_at)}",
                f"size:        {_fmt_bytes(meta.size_bytes)}",
                f"hits:        "
                f"{'-' if meta.hits is None else meta.hits}",
            ]
        text.append("responses:")
        text += [
            f"  {name} = {value!r}"
            for name, value in sorted(responses.items())
        ]
        _emit(args, payload, text)
        return 0
    finally:
        store.close()


def _cmd_prune(args: argparse.Namespace) -> int:
    if (
        args.max_bytes is None
        and args.max_age is None
        and args.max_entries is None
    ):
        raise CliError(
            "prune needs at least one bound: "
            "--max-bytes / --max-age / --max-entries"
        )
    store = _open_store(args.store)
    try:
        budget = GCBudget(
            max_bytes=args.max_bytes,
            max_age_seconds=args.max_age,
            max_entries=args.max_entries,
            policy=args.policy,
        )
        report = collect(store, budget, dry_run=args.dry_run)
        verb = "would evict" if args.dry_run else "evicted"
        text = [
            f"{verb} {report.evicted} of {report.scanned} entries "
            f"({report.ttl_evicted} by age, {report.budget_evicted} by "
            f"budget, policy {report.policy})",
            f"reclaimed: {_fmt_bytes(report.bytes_reclaimed)}"
            if not args.dry_run
            else f"survivors: {report.entries_after} entries, "
            f"{_fmt_bytes(report.bytes_after)}",
        ]
        if not args.dry_run:
            text.append(
                f"store now: {report.entries_after} entries, "
                f"{_fmt_bytes(report.bytes_after)}"
            )
        _emit(args, report.as_dict(), text)
        return 0
    finally:
        store.close()


def _cmd_vacuum(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    try:
        report = store.compact(grace_seconds=args.grace)
        _emit(
            args,
            report.as_dict(),
            [
                f"swept {report.partials_removed} partial files, "
                f"{report.orphans_removed} orphans",
                f"reclaimed: {_fmt_bytes(report.bytes_reclaimed)}",
            ],
        )
        return 0
    finally:
        store.close()


def _cmd_export(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    try:
        report = store.export_to(args.dest)
        _emit(
            args,
            report.as_dict(),
            [
                f"exported {report.copied} of {report.scanned} entries "
                f"to {args.dest} ({_fmt_bytes(report.bytes_copied)}; "
                f"{report.skipped} already newer there)"
            ],
        )
        return 0
    finally:
        store.close()


def _cmd_merge(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    try:
        source = _open_store(args.source)
        try:
            report = store.merge_from(source)
        finally:
            source.close()
        _emit(
            args,
            report.as_dict(),
            [
                f"merged {report.copied} of {report.scanned} entries "
                f"from {args.source} ({_fmt_bytes(report.bytes_copied)}; "
                f"{report.skipped} kept local newest)"
            ],
        )
        return 0
    finally:
        store.close()


def _cmd_verify(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    try:
        report = store.verify(repair=args.repair)
        status = "clean" if report.clean else "PROBLEMS FOUND"
        _emit(
            args,
            report.as_dict(),
            [
                f"{status}: {report.valid}/{report.scanned} entries valid, "
                f"{report.invalid} invalid "
                f"({report.repaired} repaired), "
                f"{report.partials} partial files, "
                f"{_fmt_bytes(report.total_bytes)} held"
            ],
        )
        return 0 if report.clean else 2
    finally:
        store.close()


# -- queue subcommands ---------------------------------------------------------


def _open_queue(spec: str) -> WorkQueue:
    """Resolve the work queue co-located with an existing store path
    (same no-store-springs-into-existence rule as ``_open_store``)."""
    path = Path(spec)
    if not path.exists():
        raise CliError(
            f"no store at {spec!r} (a directory or *.sqlite/*.db file); "
            f"pass an existing store"
        )
    try:
        return resolve_queue(spec)
    except ReproError as error:
        raise CliError(str(error)) from error


def _queue_stats_once(args: argparse.Namespace, queue: WorkQueue) -> int:
    stats = queue.stats()
    workers = queue.worker_stats()
    payload = {**queue.describe(), **stats.as_dict(), "workers": workers}
    text = [
        f"queue:    {queue.name} @ {args.store}",
        f"pending:  {stats.pending}",
        f"leased:   {stats.leased} ({stats.expired} lease-expired)",
        f"done:     {stats.done}",
        f"failed:   {stats.failed}",
    ]
    if stats.invalid:
        text.append(f"invalid:  {stats.invalid} unreadable payloads")
    for worker_id in sorted(workers):
        held = workers[worker_id]
        oldest = held.get("oldest_lease_age")
        beat = held.get("last_heartbeat_age")
        text.append(
            f"worker:   {worker_id} holds {held.get('jobs_held', 0)} "
            f"(oldest lease {oldest:.1f}s, heartbeat {beat:.1f}s ago)"
            if oldest is not None and beat is not None
            else f"worker:   {worker_id} holds {held.get('jobs_held', 0)}"
        )
    if getattr(args, "watch", None):
        stamp = _fmt_stamp(time.time())
        payload["at"] = stamp
        text.insert(0, f"-- {stamp} --")
    _emit(args, payload, text)
    # Failed jobs are work the fleet silently lost; make CI see it.
    return 2 if stats.failed > 0 else 0


def _cmd_queue_stats(args: argparse.Namespace) -> int:
    queue = _open_queue(args.store)
    try:
        if not getattr(args, "watch", None):
            return _queue_stats_once(args, queue)
        # Watch mode: re-sample until interrupted — the operator's view
        # of queue depth while a campaign round drains across workers.
        # Ctrl-C is the normal exit and reports the last sample's code.
        # A queue that vanishes mid-watch (concurrent purge, vacuum,
        # an operator re-provisioning the substrate) is a thing to
        # *report*, not to die over: say so, keep sampling, and pick
        # the queue back up when it reappears.
        code = 0
        previous: FleetSample | None = None
        try:
            while True:
                try:
                    if args.json:
                        code = _queue_stats_once(args, queue)
                    else:
                        # Live fleet dashboard: queue depth, per-worker
                        # lease ages, throughput, resilience state and
                        # campaign round progress from the event log.
                        sample = sample_fleet(args.store, queue=queue)
                        sys.stdout.write("\x1b[2J\x1b[H")
                        print(
                            "\n".join(render_dashboard(sample, previous))
                        )
                        previous = sample
                        code = (
                            2
                            if sample.queue_counts.get("failed", 0) > 0
                            else 0
                        )
                except (ReproError, OSError, sqlite3.Error) as error:
                    print(
                        f"-- queue unreadable ({error}); still "
                        "watching --",
                        file=sys.stderr,
                    )
                    try:
                        queue.close()
                        queue = resolve_queue(args.store)
                    except (ReproError, OSError, sqlite3.Error):
                        pass
                sys.stdout.flush()
                time.sleep(args.watch)
        except KeyboardInterrupt:
            return code
    finally:
        queue.close()


def _cmd_queue_ls(args: argparse.Namespace) -> int:
    queue = _open_queue(args.store)
    try:
        records = [
            record
            for record in queue.jobs()
            if args.status is None or record.status == args.status
        ]
        if args.limit:
            records = records[: args.limit]
        payload = {"jobs": [record.as_dict() for record in records]}
        text = [
            f"{'job':16}  {'status':8}  {'attempts':>8}  "
            f"{'worker':20}  {'enqueued':19}  error"
        ]
        for record in records:
            text.append(
                f"{record.job_id[:16]:16}  {record.status:8}  "
                f"{record.attempts:>8}  "
                f"{(record.worker_id or '-')[:20]:20}  "
                f"{_fmt_stamp(record.enqueued_at):19}  "
                f"{record.error or '-'}"
            )
        _emit(args, payload, text)
        return 0
    finally:
        queue.close()


def _resolve_job_prefix(queue: WorkQueue, prefix: str) -> str:
    matches = [
        record.job_id
        for record in queue.jobs()
        if record.job_id.startswith(prefix)
    ]
    if not matches:
        raise CliError(f"no job matches id prefix {prefix!r}")
    if len(matches) > 1:
        raise CliError(
            f"job id prefix {prefix!r} is ambiguous "
            f"({len(matches)} matches); give more characters"
        )
    return matches[0]


def _cmd_queue_requeue(args: argparse.Namespace) -> int:
    if not args.jobs and not args.failed and not args.expired:
        raise CliError(
            "requeue needs job id prefixes, --failed, or --expired"
        )
    queue = _open_queue(args.store)
    try:
        requeued = 0
        reclaimed = 0
        if args.expired:
            reclaimed = queue.reclaim()
        if args.failed:
            for record in list(queue.jobs()):
                if record.status == "failed" and queue.requeue(
                    record.job_id
                ):
                    requeued += 1
        for prefix in args.jobs:
            if queue.requeue(_resolve_job_prefix(queue, prefix)):
                requeued += 1
        payload = {"requeued": requeued, "reclaimed": reclaimed}
        _emit(
            args,
            payload,
            [
                f"requeued {requeued} jobs, reclaimed {reclaimed} "
                f"expired leases"
            ],
        )
        return 0
    finally:
        queue.close()


# -- wiring --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Inspect and manage persistent evaluation stores.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "store",
        help="store path: a directory (file store) or *.sqlite/*.db",
    )
    common.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "stats", parents=[common], help="occupancy and age summary"
    ).set_defaults(func=_cmd_stats)

    ls = sub.add_parser("ls", parents=[common], help="list entries")
    ls.add_argument(
        "--sort",
        choices=sorted(_LS_KEYS),
        default="created",
        help="sort column (default: created)",
    )
    ls.add_argument("--reverse", action="store_true", help="descending")
    ls.add_argument(
        "--limit", type=int, default=0, help="show at most N entries"
    )
    ls.set_defaults(func=_cmd_ls)

    show = sub.add_parser(
        "show", parents=[common], help="one entry's metadata + responses"
    )
    show.add_argument("fingerprint", help="full fingerprint or unique prefix")
    show.set_defaults(func=_cmd_show)

    prune = sub.add_parser(
        "prune", parents=[common], help="garbage-collect to a budget"
    )
    prune.add_argument(
        "--max-bytes", type=parse_bytes, default=None,
        help="byte ceiling, e.g. 512MB",
    )
    prune.add_argument(
        "--max-age", type=parse_duration, default=None,
        help="drop entries unused for longer, e.g. 7d",
    )
    prune.add_argument("--max-entries", type=int, default=None)
    prune.add_argument(
        "--policy", choices=sorted(POLICIES), default="lru",
        help="eviction order for the size/count bounds",
    )
    prune.add_argument(
        "--dry-run", action="store_true", help="plan without deleting"
    )
    prune.set_defaults(func=_cmd_prune)

    vacuum = sub.add_parser(
        "vacuum", parents=[common],
        help="compact: SQLite VACUUM / sweep stale partial files",
    )
    vacuum.add_argument(
        "--grace", type=parse_duration, default=60.0,
        help="minimum partial-file age before sweeping (default 60s)",
    )
    vacuum.set_defaults(func=_cmd_vacuum)

    export = sub.add_parser(
        "export", parents=[common], help="copy all entries to another store"
    )
    export.add_argument("dest", help="destination store path (created)")
    export.set_defaults(func=_cmd_export)

    merge = sub.add_parser(
        "merge", parents=[common],
        help="union another store into this one (newest wins)",
    )
    merge.add_argument("source", help="source store path")
    merge.set_defaults(func=_cmd_merge)

    verify = sub.add_parser(
        "verify", parents=[common],
        help="integrity scan; exit 2 if problems remain",
    )
    verify.add_argument(
        "--repair", action="store_true", help="drop invalid entries"
    )
    verify.set_defaults(func=_cmd_verify)

    queue = sub.add_parser(
        "queue", help="inspect/manage the work queue beside a store"
    )
    qsub = queue.add_subparsers(dest="queue_command", required=True)

    qstats = qsub.add_parser(
        "stats", parents=[common],
        help="job counts by status; exit 2 if failed jobs remain",
    )
    qstats.add_argument(
        "--watch", type=parse_duration, default=None, metavar="SECONDS",
        help="re-sample every SECONDS until interrupted (watch queue "
        "depth while a campaign round drains across workers)",
    )
    qstats.set_defaults(func=_cmd_queue_stats)

    qls = qsub.add_parser("ls", parents=[common], help="list job rows")
    qls.add_argument(
        "--status", choices=JOB_STATUSES, default=None,
        help="only this status",
    )
    qls.add_argument(
        "--limit", type=int, default=0, help="show at most N jobs"
    )
    qls.set_defaults(func=_cmd_queue_ls)

    qrequeue = qsub.add_parser(
        "requeue", parents=[common],
        help="return failed/expired/named jobs to pending",
    )
    qrequeue.add_argument(
        "jobs", nargs="*", help="job id prefixes to requeue"
    )
    qrequeue.add_argument(
        "--failed", action="store_true", help="requeue every failed job"
    )
    qrequeue.add_argument(
        "--expired", action="store_true",
        help="reclaim every lease-expired job",
    )
    qrequeue.set_defaults(func=_cmd_queue_requeue)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (CliError, ReproError) as error:
        print(f"{PROG}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
