"""Base-excitation acceleration sources.

A :class:`VibrationSource` produces the base acceleration ``a(t)`` (in
m/s^2) that drives the harvester's proof mass, plus a ground-truth
``dominant_frequency(t)`` that the tuning-controller models can compare
their own estimates against and that the envelope simulation engine uses
to parameterize its steady-state maps.

The concrete sources cover the situations the paper's application
domains (environmental sensing, structural monitoring, pervasive
healthcare) expose a tunable harvester to:

* :class:`SineVibration` — stationary machinery tone.
* :class:`MultiToneVibration` — a dominant tone plus harmonics/sidebands.
* :class:`DriftingSineVibration` — machinery whose speed ramps slowly,
  the canonical case *for* frequency tuning.
* :class:`SteppedFrequencyVibration` — discrete operating-point changes.
* :class:`BandNoiseVibration` — band-limited random excitation built
  from many incommensurate tones (deterministic given a seed).
* :class:`CompositeVibration` — superposition of any of the above.

All sources are deterministic functions of time so the two transient
engines (which step at different instants) see the same waveform.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.units import TWO_PI


class VibrationSource(ABC):
    """Deterministic base-acceleration waveform ``a(t)``."""

    @abstractmethod
    def acceleration(self, t: float) -> float:
        """Instantaneous base acceleration in m/s^2 at time ``t``."""

    @abstractmethod
    def dominant_frequency(self, t: float) -> float:
        """Ground-truth dominant frequency in Hz at time ``t``."""

    def amplitude(self, t: float) -> float:
        """Amplitude (peak m/s^2) of the dominant component at ``t``.

        Subclasses with a meaningful notion of a dominant-tone amplitude
        override this; the default returns the RMS-derived peak of a
        short window, which is adequate for reporting.
        """
        window = np.linspace(t, t + 0.25, 256)
        samples = self.acceleration_array(window)
        return float(np.sqrt(2.0) * np.sqrt(np.mean(samples**2)))

    def acceleration_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`acceleration` over an array of times.

        The base implementation loops; subclasses override with closed
        forms where that matters for speed (the envelope engine samples
        thousands of points when it builds steady-state maps).
        """
        return np.array([self.acceleration(float(t)) for t in times])


class SineVibration(VibrationSource):
    """Single stationary tone: ``a(t) = A sin(2 pi f t + phase)``."""

    def __init__(self, amplitude: float, frequency: float, phase: float = 0.0):
        if amplitude < 0.0:
            raise ModelError(f"vibration amplitude must be >= 0, got {amplitude}")
        if frequency <= 0.0:
            raise ModelError(f"vibration frequency must be > 0, got {frequency}")
        self._amplitude = float(amplitude)
        self._frequency = float(frequency)
        self._phase = float(phase)

    def acceleration(self, t: float) -> float:
        return self._amplitude * math.sin(TWO_PI * self._frequency * t + self._phase)

    def acceleration_array(self, times: np.ndarray) -> np.ndarray:
        return self._amplitude * np.sin(TWO_PI * self._frequency * times + self._phase)

    def dominant_frequency(self, t: float) -> float:
        return self._frequency

    def amplitude(self, t: float) -> float:
        return self._amplitude

    def __repr__(self) -> str:
        return (
            f"SineVibration(amplitude={self._amplitude}, "
            f"frequency={self._frequency}, phase={self._phase})"
        )


class MultiToneVibration(VibrationSource):
    """Superposition of stationary tones ``(amplitude, frequency, phase)``.

    The dominant frequency is that of the largest-amplitude tone; ties
    resolve to the lowest such frequency, which matches what a
    peak-picking spectral estimator would report.
    """

    def __init__(self, tones: Sequence[tuple[float, float, float]]):
        if not tones:
            raise ModelError("MultiToneVibration requires at least one tone")
        cleaned = []
        for amp, freq, phase in tones:
            if amp < 0.0:
                raise ModelError(f"tone amplitude must be >= 0, got {amp}")
            if freq <= 0.0:
                raise ModelError(f"tone frequency must be > 0, got {freq}")
            cleaned.append((float(amp), float(freq), float(phase)))
        self._tones = tuple(cleaned)
        best = max(self._tones, key=lambda tone: (tone[0], -tone[1]))
        self._dominant = best[1]
        self._dominant_amplitude = best[0]

    @property
    def tones(self) -> tuple[tuple[float, float, float], ...]:
        """The ``(amplitude, frequency, phase)`` triples, as given."""
        return self._tones

    def acceleration(self, t: float) -> float:
        return sum(
            amp * math.sin(TWO_PI * freq * t + phase)
            for amp, freq, phase in self._tones
        )

    def acceleration_array(self, times: np.ndarray) -> np.ndarray:
        total = np.zeros_like(times, dtype=float)
        for amp, freq, phase in self._tones:
            total += amp * np.sin(TWO_PI * freq * times + phase)
        return total

    def dominant_frequency(self, t: float) -> float:
        return self._dominant

    def amplitude(self, t: float) -> float:
        return self._dominant_amplitude


class DriftingSineVibration(VibrationSource):
    """A tone whose frequency ramps linearly from ``f_start`` to ``f_end``.

    The instantaneous frequency is ``f_start + rate * t`` clamped at
    ``f_end`` after ``t_ramp = (f_end - f_start) / rate`` (the drift can
    go in either direction).  The phase is integrated exactly so the
    waveform is continuous:

    ``a(t) = A sin(2 pi * integral_0^t f(u) du)``.

    This is the canonical motivating case for a tunable harvester: a
    fixed-frequency device loses resonance as the machine speeds up,
    while the tuning controller can follow the drift.
    """

    def __init__(
        self,
        amplitude: float,
        f_start: float,
        f_end: float,
        drift_rate: float,
    ):
        if amplitude < 0.0:
            raise ModelError(f"vibration amplitude must be >= 0, got {amplitude}")
        if f_start <= 0.0 or f_end <= 0.0:
            raise ModelError("drift frequencies must be > 0")
        if drift_rate <= 0.0:
            raise ModelError(f"drift_rate must be > 0 Hz/s, got {drift_rate}")
        self._amplitude = float(amplitude)
        self._f_start = float(f_start)
        self._f_end = float(f_end)
        signed = math.copysign(drift_rate, f_end - f_start)
        self._rate = signed if f_end != f_start else 0.0
        self._t_ramp = (
            abs(f_end - f_start) / drift_rate if f_end != f_start else 0.0
        )

    @property
    def ramp_duration(self) -> float:
        """Seconds until the frequency settles at ``f_end``."""
        return self._t_ramp

    def dominant_frequency(self, t: float) -> float:
        if t <= 0.0:
            return self._f_start
        if t >= self._t_ramp:
            return self._f_end
        return self._f_start + self._rate * t

    def _phase(self, t: float) -> float:
        """Exact integral of 2*pi*f(u) du from 0 to t."""
        if t <= 0.0:
            return 0.0
        t_lin = min(t, self._t_ramp)
        phase = TWO_PI * (self._f_start * t_lin + 0.5 * self._rate * t_lin**2)
        if t > self._t_ramp:
            phase += TWO_PI * self._f_end * (t - self._t_ramp)
        return phase

    def acceleration(self, t: float) -> float:
        return self._amplitude * math.sin(self._phase(t))

    def acceleration_array(self, times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        t_lin = np.clip(t, 0.0, self._t_ramp)
        phase = TWO_PI * (self._f_start * t_lin + 0.5 * self._rate * t_lin**2)
        phase += TWO_PI * self._f_end * np.clip(t - self._t_ramp, 0.0, None)
        return self._amplitude * np.sin(phase)

    def amplitude(self, t: float) -> float:
        return self._amplitude


class SteppedFrequencyVibration(VibrationSource):
    """Piecewise-constant frequency schedule (machine operating points).

    ``steps`` is a sequence of ``(start_time, frequency)`` pairs sorted
    by start time; the first entry must start at ``t = 0``.  Amplitude is
    common to all steps.  Phase is kept continuous across the switch
    instants so the waveform has no jumps.
    """

    def __init__(self, amplitude: float, steps: Sequence[tuple[float, float]]):
        if amplitude < 0.0:
            raise ModelError(f"vibration amplitude must be >= 0, got {amplitude}")
        if not steps:
            raise ModelError("SteppedFrequencyVibration requires at least one step")
        times = [float(t) for t, _ in steps]
        freqs = [float(f) for _, f in steps]
        if times[0] != 0.0:
            raise ModelError("first step must start at t=0")
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ModelError("step start times must be strictly increasing")
        if any(f <= 0.0 for f in freqs):
            raise ModelError("step frequencies must be > 0")
        self._amplitude = float(amplitude)
        self._times = times
        self._freqs = freqs
        # Accumulated phase at the start of each step keeps continuity.
        self._phase_at = [0.0]
        for i in range(1, len(times)):
            span = times[i] - times[i - 1]
            self._phase_at.append(
                self._phase_at[-1] + TWO_PI * freqs[i - 1] * span
            )

    def _segment(self, t: float) -> int:
        return max(0, bisect_right(self._times, t) - 1)

    def dominant_frequency(self, t: float) -> float:
        return self._freqs[self._segment(t)]

    def acceleration(self, t: float) -> float:
        seg = self._segment(t)
        phase = self._phase_at[seg] + TWO_PI * self._freqs[seg] * (
            t - self._times[seg]
        )
        return self._amplitude * math.sin(phase)

    def amplitude(self, t: float) -> float:
        return self._amplitude


class BandNoiseVibration(VibrationSource):
    """Band-limited pseudo-random excitation.

    Deterministic sum of ``n_tones`` tones with frequencies drawn
    uniformly in ``[f_low, f_high]`` and random phases, scaled so the
    whole waveform has the requested RMS level.  Being a fixed, seeded
    tone set rather than streaming noise keeps the waveform an exact
    function of ``t`` — both simulation engines and the repeated
    envelope-map builds all see identical excitation.

    The nominal dominant frequency is the amplitude-weighted... in fact
    simply the largest-amplitude tone, as a spectral peak-pick would
    find.
    """

    def __init__(
        self,
        rms: float,
        f_low: float,
        f_high: float,
        n_tones: int = 24,
        seed: int = 0,
    ):
        if rms < 0.0:
            raise ModelError(f"rms must be >= 0, got {rms}")
        if not (0.0 < f_low < f_high):
            raise ModelError(f"need 0 < f_low < f_high, got [{f_low}, {f_high}]")
        if n_tones < 1:
            raise ModelError("n_tones must be >= 1")
        rng = np.random.default_rng(seed)
        freqs = np.sort(rng.uniform(f_low, f_high, size=n_tones))
        amps = rng.uniform(0.3, 1.0, size=n_tones)
        phases = rng.uniform(0.0, TWO_PI, size=n_tones)
        # RMS of a sum of incommensurate tones: sqrt(sum(a_i^2)/2).
        raw_rms = math.sqrt(float(np.sum(amps**2)) / 2.0)
        scale = rms / raw_rms if raw_rms > 0.0 else 0.0
        self._freqs = freqs
        self._amps = amps * scale
        self._phases = phases
        self._rms = float(rms)
        peak = int(np.argmax(self._amps))
        self._dominant = float(freqs[peak])
        self._dominant_amplitude = float(self._amps[peak])

    def acceleration(self, t: float) -> float:
        return float(
            np.sum(self._amps * np.sin(TWO_PI * self._freqs * t + self._phases))
        )

    def acceleration_array(self, times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        args = TWO_PI * np.outer(t, self._freqs) + self._phases
        return np.sin(args) @ self._amps

    def dominant_frequency(self, t: float) -> float:
        return self._dominant

    def amplitude(self, t: float) -> float:
        return self._dominant_amplitude

    @property
    def rms(self) -> float:
        """Requested RMS acceleration of the whole band, m/s^2."""
        return self._rms


class CompositeVibration(VibrationSource):
    """Superposition of arbitrary sources.

    Dominant frequency is delegated to the component whose
    :meth:`~VibrationSource.amplitude` is largest at the queried time,
    which tracks regime changes when e.g. a drifting tone rides on top
    of background noise.
    """

    def __init__(self, sources: Sequence[VibrationSource]):
        if not sources:
            raise ModelError("CompositeVibration requires at least one source")
        self._sources = tuple(sources)

    @property
    def sources(self) -> tuple[VibrationSource, ...]:
        return self._sources

    def acceleration(self, t: float) -> float:
        return sum(source.acceleration(t) for source in self._sources)

    def acceleration_array(self, times: np.ndarray) -> np.ndarray:
        total = np.zeros(np.shape(times), dtype=float)
        for source in self._sources:
            total = total + source.acceleration_array(times)
        return total

    def dominant_frequency(self, t: float) -> float:
        best = max(self._sources, key=lambda source: source.amplitude(t))
        return best.dominant_frequency(t)

    def amplitude(self, t: float) -> float:
        return max(source.amplitude(t) for source in self._sources)
