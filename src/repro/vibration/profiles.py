"""Canonical application vibration profiles.

The paper motivates energy-harvester-powered nodes with environmental
sensing, structural monitoring and pervasive healthcare.  These factory
functions build representative :class:`~repro.vibration.sources.VibrationSource`
instances for each, calibrated to levels published for the corresponding
environments (tens of milli-g around tens of hertz for machinery and
structures; low-frequency, higher-amplitude motion for wearables).

They are used by the test scenarios SC1-SC3 in the benchmark suite and
by the examples; all values are documented assumptions, not proprietary
trace data (see DESIGN.md section on substitutions).
"""

from __future__ import annotations

from repro.units import g_to_ms2
from repro.vibration.sources import (
    BandNoiseVibration,
    CompositeVibration,
    DriftingSineVibration,
    MultiToneVibration,
    SineVibration,
    SteppedFrequencyVibration,
    VibrationSource,
)


def machine_room_profile(
    base_frequency: float = 67.0,
    level_g: float = 0.06,
    drift_hz: float = 0.0,
    drift_rate: float = 0.01,
    seed: int = 7,
) -> VibrationSource:
    """Industrial machinery: strong tone at the running speed + noise floor.

    Args:
        base_frequency: machine tone, Hz (AC machinery commonly 50/60 Hz
            and harmonics; the Southampton test rig ran near 67 Hz).
        level_g: tone amplitude in g (0.06 g = 0.59 m/s^2 is a typical
            published machine-frame level).
        drift_hz: if non-zero, the tone drifts by this much (signed)
            over the mission — the motivating case for tuning.
        drift_rate: drift speed in Hz/s when ``drift_hz`` is non-zero.
        seed: seed for the background noise tones.
    """
    amp = g_to_ms2(level_g)
    if drift_hz:
        tone: VibrationSource = DriftingSineVibration(
            amplitude=amp,
            f_start=base_frequency,
            f_end=base_frequency + drift_hz,
            drift_rate=drift_rate,
        )
    else:
        tone = SineVibration(amplitude=amp, frequency=base_frequency)
    noise = BandNoiseVibration(
        rms=0.10 * amp, f_low=20.0, f_high=180.0, n_tones=16, seed=seed
    )
    return CompositeVibration([tone, noise])


def bridge_profile(
    fundamental: float = 64.5,
    level_g: float = 0.04,
    seed: int = 11,
) -> VibrationSource:
    """Structural monitoring: stationary narrow tone plus weak harmonics.

    Bridges and building plant excited by steady traffic/machinery show
    a stable dominant mode with small harmonic content; amplitude is
    lower than direct machine mounting.
    """
    amp = g_to_ms2(level_g)
    tones = MultiToneVibration(
        [
            (amp, fundamental, 0.0),
            (0.25 * amp, 2.0 * fundamental, 1.1),
            (0.10 * amp, 3.0 * fundamental, 2.3),
        ]
    )
    noise = BandNoiseVibration(
        rms=0.08 * amp, f_low=10.0, f_high=200.0, n_tones=12, seed=seed
    )
    return CompositeVibration([tones, noise])


def human_motion_profile(
    cadence: float = 2.0,
    level_g: float = 0.5,
) -> VibrationSource:
    """Pervasive healthcare / wearable: low-frequency gait excitation.

    Walking produces ~2 Hz fundamental at a fraction of a g with strong
    harmonics.  A resonant microgenerator tuned for tens of hertz
    harvests mainly from the harmonics; this profile exists so examples
    can show why the machine-class harvester is a poor match here (and
    what tuning down to the range limit buys).
    """
    amp = g_to_ms2(level_g)
    return MultiToneVibration(
        [
            (amp, cadence, 0.0),
            (0.5 * amp, 2.0 * cadence, 0.6),
            (0.25 * amp, 3.0 * cadence, 1.2),
            (0.12 * amp, 4.0 * cadence, 1.9),
        ]
    )


def duty_shift_profile(
    frequencies: tuple[float, ...] = (65.0, 70.5, 76.0, 68.0),
    dwell: float = 450.0,
    level_g: float = 0.06,
) -> VibrationSource:
    """Machinery stepping between discrete operating points.

    Used by scenario SC3: the harvester must re-tune after each step or
    lose most of its output until the next tuning-controller wake-up.
    """
    steps = [(i * dwell, f) for i, f in enumerate(frequencies)]
    return SteppedFrequencyVibration(amplitude=g_to_ms2(level_g), steps=steps)


#: Name -> factory registry used by the CLI-ish example scripts.
PROFILES = {
    "machine": machine_room_profile,
    "bridge": bridge_profile,
    "human": human_motion_profile,
    "duty-shift": duty_shift_profile,
}
