"""Vibration environment substrate.

Everything the harvester sees from the outside world: base-excitation
acceleration sources (:mod:`repro.vibration.sources`), dominant-frequency
estimation used by the tuning controller
(:mod:`repro.vibration.spectrum`), and canonical application profiles
(:mod:`repro.vibration.profiles`).
"""

from repro.vibration.sources import (
    VibrationSource,
    SineVibration,
    MultiToneVibration,
    DriftingSineVibration,
    SteppedFrequencyVibration,
    BandNoiseVibration,
    CompositeVibration,
)
from repro.vibration.spectrum import (
    estimate_dominant_frequency,
    fft_dominant_frequency,
    zero_crossing_frequency,
)
from repro.vibration.profiles import (
    machine_room_profile,
    bridge_profile,
    human_motion_profile,
    PROFILES,
)

__all__ = [
    "VibrationSource",
    "SineVibration",
    "MultiToneVibration",
    "DriftingSineVibration",
    "SteppedFrequencyVibration",
    "BandNoiseVibration",
    "CompositeVibration",
    "estimate_dominant_frequency",
    "fft_dominant_frequency",
    "zero_crossing_frequency",
    "machine_room_profile",
    "bridge_profile",
    "human_motion_profile",
    "PROFILES",
]
