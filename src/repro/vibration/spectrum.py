"""Dominant-frequency estimation.

The tuning controller on the real node estimates the dominant ambient
vibration frequency from a short accelerometer capture before deciding
whether to spend energy re-tuning the harvester.  Two standard
estimators are provided:

* :func:`fft_dominant_frequency` — windowed FFT peak pick with parabolic
  interpolation between bins.  This is what the published tuning
  controllers use; its resolution is limited by the capture length and
  improved by the interpolation step.
* :func:`zero_crossing_frequency` — counts positive-going zero
  crossings; cheaper on a microcontroller, adequate for clean
  single-tone inputs, biased for multi-tone input.

:func:`estimate_dominant_frequency` is the convenience front-end used by
the controller model: it samples a :class:`~repro.vibration.sources.VibrationSource`
over a capture window and runs the chosen estimator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.vibration.sources import VibrationSource


def fft_dominant_frequency(samples: np.ndarray, sample_rate: float) -> float:
    """Dominant frequency of a real signal by FFT peak with interpolation.

    A Hann window suppresses leakage; the peak bin is refined by fitting
    a parabola through the log-magnitude of the peak and its neighbours,
    which recovers sub-bin resolution (standard quadratic interpolation).

    Args:
        samples: real time-domain samples, length >= 8.
        sample_rate: sampling rate in Hz.

    Returns:
        Estimated dominant frequency in Hz (0.0 for an all-zero signal).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 8:
        raise ModelError("need a 1-D capture of at least 8 samples")
    if sample_rate <= 0.0:
        raise ModelError(f"sample_rate must be > 0, got {sample_rate}")
    if not np.any(samples):
        return 0.0
    window = np.hanning(samples.size)
    spectrum = np.abs(np.fft.rfft(samples * window))
    spectrum[0] = 0.0  # ignore DC
    peak = int(np.argmax(spectrum))
    if spectrum[peak] == 0.0:
        return 0.0
    # Parabolic interpolation around the peak (guard the edges).
    if 1 <= peak < spectrum.size - 1:
        left, centre, right = spectrum[peak - 1 : peak + 2]
        # Work in log magnitude; add a floor to avoid log(0).
        floor = 1e-300
        a = np.log(max(left, floor))
        b = np.log(max(centre, floor))
        c = np.log(max(right, floor))
        denom = a - 2.0 * b + c
        shift = 0.5 * (a - c) / denom if denom != 0.0 else 0.0
        shift = float(np.clip(shift, -0.5, 0.5))
    else:
        shift = 0.0
    bin_width = sample_rate / samples.size
    return (peak + shift) * bin_width


def zero_crossing_frequency(samples: np.ndarray, sample_rate: float) -> float:
    """Frequency estimate from positive-going zero crossings.

    Counts the sign changes from negative to non-negative and divides by
    the elapsed time between the first and last crossing, which avoids
    the half-period truncation bias of dividing by the whole window.

    Returns 0.0 when fewer than two crossings are seen.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 4:
        raise ModelError("need a 1-D capture of at least 4 samples")
    if sample_rate <= 0.0:
        raise ModelError(f"sample_rate must be > 0, got {sample_rate}")
    signs = samples >= 0.0
    rising = np.flatnonzero(~signs[:-1] & signs[1:])
    if rising.size < 2:
        return 0.0
    # Linear interpolation of each crossing instant for sub-sample accuracy.
    i = rising
    frac = samples[i] / (samples[i] - samples[i + 1])
    crossing_times = (i + frac) / sample_rate
    span = crossing_times[-1] - crossing_times[0]
    if span <= 0.0:
        return 0.0
    return (rising.size - 1) / span


def estimate_dominant_frequency(
    source: VibrationSource,
    t_start: float,
    capture_time: float = 0.5,
    sample_rate: float = 1024.0,
    method: str = "fft",
) -> float:
    """Sample ``source`` over a window and estimate its dominant frequency.

    This mimics the controller firmware: capture ``capture_time`` seconds
    of accelerometer data at ``sample_rate`` starting at ``t_start``,
    then run the selected estimator.

    Args:
        source: the vibration environment.
        t_start: capture start time, s.
        capture_time: window length, s (longer = finer FFT resolution).
        sample_rate: accelerometer sampling rate, Hz.
        method: ``"fft"`` or ``"zero-crossing"``.

    Returns:
        Estimated dominant frequency in Hz.
    """
    if capture_time <= 0.0:
        raise ModelError(f"capture_time must be > 0, got {capture_time}")
    n = max(8, int(round(capture_time * sample_rate)))
    times = t_start + np.arange(n) / sample_rate
    samples = source.acceleration_array(times)
    if method == "fft":
        return fft_dominant_frequency(samples, sample_rate)
    if method == "zero-crossing":
        return zero_crossing_frequency(samples, sample_rate)
    raise ModelError(f"unknown estimation method {method!r}")
