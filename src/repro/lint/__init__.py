"""``repro-lint``: static enforcement of the platform's invariants.

The rule pack (REP101-REP106) encodes the determinism, durability
and resilience contracts PRs 1-6 established dynamically; this
package checks them at review time from the AST alone.  See
``docs/lint_rules.md`` for the operator-facing catalog, and
``python -m repro.lint --list-rules`` for the live one.
"""

from repro.lint.core import (
    Finding,
    LintConfig,
    LintResult,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    lint_text,
    register,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_text",
    "register",
]
