"""``repro-lint`` — the static invariant gate, as a command.

Usage::

    repro-lint [PATHS ...] [--json] [--tests-dir DIR]
               [--baseline FILE] [--write-baseline FILE]
               [--list-rules]

Paths default to ``src benchmarks`` (the self-hosting configuration
CI gates on).  Exit status: 0 clean, 1 usage/internal error, 2
findings — the same convention ``repro-cache verify`` uses.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.lint.core import (
    LintResult,
    all_rules,
    lint_paths,
    load_baseline,
    write_baseline,
)

_DEFAULT_PATHS = ("src", "benchmarks")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "statically enforce the platform's determinism, "
            "durability and resilience invariants (REP101-REP106)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings + summary on stdout",
    )
    parser.add_argument(
        "--tests-dir",
        default="tests",
        help=(
            "directory holding the contract suites REP106 "
            "cross-references (default: tests; skipped if missing)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline of tolerated findings to suppress",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help=(
            "write the surviving findings to FILE as a baseline "
            "and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules(as_json: bool) -> int:
    rules = all_rules()
    if as_json:
        print(
            json.dumps(
                [
                    {
                        "id": rule.id,
                        "title": rule.title,
                        "severity": rule.severity,
                        "rationale": rule.rationale,
                    }
                    for rule in rules
                ],
                indent=2,
            )
        )
        return 0
    for rule in rules:
        print(f"{rule.id}  {rule.title}")
        print(f"       {rule.rationale}")
    return 0


def _report_human(result: LintResult) -> None:
    for finding in result.findings:
        print(finding.render())
    bits = [
        f"{len(result.findings)} finding(s)",
        f"{result.waived} waived",
    ]
    if result.suppressed:
        bits.append(f"{result.suppressed} baseline-suppressed")
    bits.append(f"{result.files} file(s) checked")
    print(("clean: " if result.clean else "") + ", ".join(bits))


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(args.json)

    paths = list(args.paths)
    if not paths:
        paths = [p for p in _DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print(
                "repro-lint: no paths given and none of the default "
                f"paths {_DEFAULT_PATHS} exist here",
                file=sys.stderr,
            )
            return 1

    baseline = None
    try:
        if args.baseline:
            baseline = load_baseline(args.baseline)
        result = lint_paths(
            paths,
            tests_dir=args.tests_dir,
            baseline=baseline,
        )
    except (ReproError, OSError, ValueError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 1

    if args.write_baseline:
        write_baseline(args.write_baseline, result)
        print(
            f"baseline with {len(result.findings)} entr(ies) written "
            f"to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        _report_human(result)
    return result.exit_code()


if __name__ == "__main__":  # pragma: no cover - exercised as module
    raise SystemExit(main())
