"""The invariant rule pack: REP101–REP106.

Each rule encodes one correctness contract PRs 1–6 established the
hard way.  The docstrings state the invariant and the incident that
motivated it; ``docs/lint_rules.md`` is the operator-facing catalog.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.lint.core import (
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    path_matches,
    register,
)

# -- name-resolution helpers ---------------------------------------------------


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, from this file's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``;
    ``import numpy.random`` maps ``numpy -> numpy`` (attribute access
    resolves the rest).  Good enough to resolve call targets without
    executing anything.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    aliases[name.name.split(".")[0]] = (
                        name.name.split(".")[0]
                    )
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:  # relative import: not a stdlib module
                continue
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def resolve_target(
    func: ast.expr, aliases: dict[str, str]
) -> str | None:
    """Dotted origin of a call target, or None if unresolvable."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = aliases.get(node.id)
    if head is None:
        return None
    parts.append(head)
    return ".".join(reversed(parts))


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# -- REP101: unseeded / implicit RNG -------------------------------------------

#: numpy.random attributes that are seedable constructors, not
#: global-state draws.
_NP_RANDOM_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


@register
class UnseededRandomRule(Rule):
    """Every random draw must trace to an explicit seed.

    PR 4's bit-identity guarantee (serial == process == distributed)
    dies the moment any code path consults an implicitly seeded RNG:
    ``np.random.default_rng()`` seeds from the OS, ``random.random()``
    and friends share mutable global state no worker fleet can
    reproduce.  Seeded constructors (``default_rng(seed)``,
    ``Random(seed)``) are the only sanctioned sources of randomness.
    """

    id = "REP101"
    title = "unseeded or implicit RNG"
    rationale = (
        "bit-identical results across backends require every random "
        "draw to trace to an explicit seed"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_target(node.func, aliases)
            if target is None:
                continue
            unseeded = (
                not node.args or _is_none(node.args[0])
            ) and not node.keywords
            if target == "numpy.random.default_rng":
                if unseeded:
                    yield ctx.finding(
                        self,
                        node,
                        "default_rng() without an explicit seed is "
                        "nondeterministic; pass a seed derived from "
                        "the study/round configuration",
                    )
            elif target in ("random.Random", "random.SystemRandom"):
                if target.endswith("SystemRandom") or unseeded:
                    yield ctx.finding(
                        self,
                        node,
                        f"{target}() draws OS entropy / an implicit "
                        "seed; construct random.Random(seed) with an "
                        "explicit seed instead",
                    )
            elif target.startswith("random."):
                yield ctx.finding(
                    self,
                    node,
                    f"module-level {target}() uses the interpreter's "
                    "hidden global RNG state; use a seeded "
                    "random.Random(seed) instance",
                )
            elif target.startswith("numpy.random."):
                attr = target.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_CONSTRUCTORS:
                    yield ctx.finding(
                        self,
                        node,
                        f"{target}() uses numpy's legacy global RNG "
                        "state; use a seeded "
                        "numpy.random.default_rng(seed)",
                    )
                elif attr != "default_rng" and unseeded:
                    yield ctx.finding(
                        self,
                        node,
                        f"{target}() without an explicit seed is "
                        "nondeterministic",
                    )


# -- REP102: wall-clock in determinism-critical code ---------------------------

_WALLCLOCK_TARGETS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """No wall-clock reads where fingerprints or payloads are built.

    PR 2's fingerprint collisions taught that anything feeding
    ``point_fingerprint`` / ``_canonical`` must be a pure function of
    the design point and context; a timestamp in that path silently
    keys every run differently and the cache never hits.  Lease
    horizons, GC clocks and entry metadata *do* read the wall clock —
    those modules are allowlisted by configuration, not by accident.
    """

    id = "REP102"
    title = "wall-clock in fingerprint/canonicalization/result path"
    rationale = (
        "cache keys and result payloads must be pure functions of "
        "the design point and evaluation context"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        cfg = ctx.config
        critical = ctx.in_scope(cfg.wallclock_critical_modules)
        allowed = ctx.in_scope(cfg.wallclock_allow_modules)
        if allowed and not critical:
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_target(node.func, aliases)
            if target not in _WALLCLOCK_TARGETS:
                continue
            if critical:
                yield ctx.finding(
                    self,
                    node,
                    f"{target}() in a determinism-critical module; "
                    "fingerprint/canonicalization code must not read "
                    "the wall clock",
                )
                continue
            function = ctx.enclosing_function(node)
            name = function.name if function is not None else ""
            if any(
                marker in name
                for marker in cfg.wallclock_function_markers
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{target}() inside {name}(): "
                    "fingerprint/canonicalization helpers must not "
                    "read the wall clock",
                )


# -- REP103: atomic durable writes ---------------------------------------------

_WRITE_MODE_RE = re.compile(r"[wx]")


def _call_mode(node: ast.Call) -> str | None:
    """The mode argument of an open() call, when statically known."""
    mode_node: ast.expr | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        return mode_node.value
    return None


@register
class AtomicWriteRule(Rule):
    """Durable files are published with temp-file + ``os.replace``.

    A reader racing a bare ``open(path, "w")`` — or a writer
    SIGKILLed mid-write (the exact scenario PR 4's lease reclamation
    and PR 5's resume proofs defend) — observes a torn file.  Durable
    modules must stage content in a temp file and ``os.replace`` it
    over the target (:mod:`repro.fsutil` is the shared helper).
    """

    id = "REP103"
    title = "non-atomic write to a durable path"
    rationale = (
        "SIGKILL-safe resume requires every durable artefact to be "
        "published atomically"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_scope(ctx.config.durable_modules):
            return
        aliases = import_aliases(ctx.tree)
        atomic_scopes = self._atomic_scopes(ctx, aliases)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_bare_open(node, aliases):
                continue
            mode = _call_mode(node)
            if mode is None or not _WRITE_MODE_RE.search(mode):
                continue
            scope = ctx.enclosing_function(node)
            if scope in atomic_scopes:
                continue
            yield ctx.finding(
                self,
                node,
                f"bare open(..., {mode!r}) in a durable module "
                "without the tempfile + os.replace idiom; use "
                "repro.fsutil.atomic_writer / atomic_write_json",
            )

    @staticmethod
    def _is_bare_open(
        node: ast.Call, aliases: dict[str, str]
    ) -> bool:
        if isinstance(node.func, ast.Name):
            # A local import may rebind the name; the builtin open is
            # only assumed when nothing shadows it.
            return node.func.id == "open" and "open" not in aliases
        target = resolve_target(node.func, aliases)
        return target == "io.open"

    @staticmethod
    def _atomic_scopes(
        ctx: FileContext, aliases: dict[str, str]
    ) -> set:
        """Functions (or the module, as None) that call
        os.replace/os.rename — the atomic-publish idiom."""
        scopes = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_target(node.func, aliases)
            replaceish = target in (
                "os.replace",
                "os.rename",
                "shutil.move",
            ) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("replace", "rename")
            )
            if replaceish:
                scopes.add(ctx.enclosing_function(node))
        return scopes


# -- REP104: SQLite connection discipline --------------------------------------


@register
class SQLiteDisciplineRule(Rule):
    """Every ``sqlite3.connect`` goes through the shared helper.

    Three hand-rolled copies of the connection setup (store, queue,
    journal) drifted before :mod:`repro.exec.sqlite_util` unified
    them; a connection missing the WAL/busy-timeout pragmas surfaces
    as spurious "database is locked" failures under worker
    concurrency.  Only the blessed helper module may call
    ``sqlite3.connect``.
    """

    id = "REP104"
    title = "sqlite3.connect outside the shared setup helper"
    rationale = (
        "uniform timeout/WAL/busy-timeout pragmas are what keep "
        "concurrent substrate access lock-storm free"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_scope(ctx.config.sqlite_helper_modules):
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_target(node.func, aliases) == "sqlite3.connect":
                yield ctx.finding(
                    self,
                    node,
                    "direct sqlite3.connect; route through "
                    "repro.exec.sqlite_util.connect_wal so the "
                    "timeout/WAL/busy-timeout discipline is applied "
                    "uniformly",
                )


# -- REP105: taxonomy-routed exception handling --------------------------------


@register
class BroadExceptRule(Rule):
    """Substrate ``except Exception`` must route the taxonomy.

    The resilience layer (PR 6) decides retry-vs-abort through
    ``repro.errors.is_transient``; a broad handler that swallows
    everything erases that distinction and turns terminal
    misconfiguration into silent data loss.  A broad handler is
    acceptable only when it re-raises, consults the taxonomy, or
    carries a waiver explaining why swallowing is genuinely intended
    (supervisor loops, best-effort diagnostics).  Bare ``except:``
    additionally catches ``KeyboardInterrupt``/``SystemExit`` and is
    always an error, everywhere.
    """

    id = "REP105"
    title = "unrouted broad exception handler"
    rationale = (
        "bounded degradation requires broad handlers to re-raise, "
        "consult the transient-vs-terminal taxonomy, or say why not"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        substrate = ctx.in_scope(ctx.config.substrate_modules)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare 'except:' catches KeyboardInterrupt and "
                    "SystemExit; name the exception types",
                )
                continue
            if not substrate:
                continue
            if not self._is_broad(node.type):
                continue
            if self._routes_taxonomy(node):
                continue
            yield ctx.finding(
                self,
                node,
                "broad except handler neither re-raises nor routes "
                "through repro.errors.is_transient; classify the "
                "failure or waive with a reason",
            )

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [
                n.id
                for n in type_node.elts
                if isinstance(n, ast.Name)
            ]
        elif isinstance(type_node, ast.Name):
            names = [type_node.id]
        return any(
            name in ("Exception", "BaseException") for name in names
        )

    @staticmethod
    def _routes_taxonomy(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Name) and node.id == "is_transient":
                return True
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "is_transient"
            ):
                return True
        return False


# -- REP106: contract-suite coverage -------------------------------------------


@register
class ContractCoverageRule(ProjectRule):
    """Every concrete substrate implementation is contract-tested.

    The parametrized contract suites (store, queue, backend, journal,
    acquisition) are the platform's behavioural spec: PR 3 replaced
    per-store test copies with one suite exactly so that a new
    implementation inherits the whole contract by adding one binding.
    This rule closes the loop statically: a concrete subclass of a
    tracked ABC that no contract module mentions is a finding at the
    class definition.
    """

    id = "REP106"
    title = "concrete implementation missing from its contract suite"
    rationale = (
        "an implementation the contract suite never sees has no "
        "pinned behaviour at all"
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterable[Finding]:
        if project.tests_dir is None:
            return
        roots = dict(project.config.contract_suites)
        classes: dict[str, dict] = {}
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                classes.setdefault(
                    node.name,
                    {
                        "bases": bases,
                        "abstract": self._is_abstract(node),
                        "ctx": ctx,
                        "line": node.lineno,
                    },
                )

        suite_text: dict[str, str | None] = {}

        def module_text(filename: str) -> str | None:
            if filename not in suite_text:
                suite_text[filename] = project.contract_module_text(
                    filename
                )
            return suite_text[filename]

        for name, info in sorted(classes.items()):
            if info["abstract"] or name.startswith("_"):
                continue
            root = self._tracked_root(name, classes, roots)
            if root is None or name == root:
                continue
            modules = roots[root]
            bound = False
            missing: list[str] = []
            pattern = re.compile(rf"\b{re.escape(name)}\b")
            for filename in modules:
                text = module_text(filename)
                if text is None:
                    missing.append(filename)
                    continue
                if pattern.search(text):
                    bound = True
                    break
            if bound:
                continue
            ctx = info["ctx"]
            where = ", ".join(modules)
            detail = (
                f" (contract module(s) not found: {', '.join(missing)})"
                if missing
                else ""
            )
            yield ctx.finding(
                self,
                info["line"],
                f"concrete {root} implementation {name!r} is not "
                f"bound into its contract suite — add a binding in "
                f"one of: {where}{detail}",
            )

    @staticmethod
    def _is_abstract(node: ast.ClassDef) -> bool:
        for item in node.body:
            if not isinstance(
                item, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for decorator in item.decorator_list:
                name = (
                    decorator.attr
                    if isinstance(decorator, ast.Attribute)
                    else decorator.id
                    if isinstance(decorator, ast.Name)
                    else ""
                )
                if name in ("abstractmethod", "abstractproperty"):
                    return True
        return False

    @staticmethod
    def _tracked_root(
        name: str, classes: dict[str, dict], roots: dict
    ) -> str | None:
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            info = classes.get(current)
            if info is None:
                if current in roots and current != name:
                    return current
                continue
            for base in info["bases"]:
                if base in roots:
                    return base
                frontier.append(base)
        return None
