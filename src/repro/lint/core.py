"""``repro-lint`` core: findings, rules, waivers, baseline, runner.

The platform's headline guarantees — bit-identical results across
backends, SIGKILL-safe resume, bounded degradation under faults —
rest on a handful of code-level invariants (seeded RNG, no wall-clock
in fingerprint paths, atomic durable writes, taxonomy-routed
exception handling, contract-suite coverage).  This module is the
machinery that enforces them *statically*, at review time, instead of
dynamically after the bug has shipped.

Architecture:

* :class:`Finding` — one violation, pinned to ``path:line``.
* :class:`Rule` / :class:`ProjectRule` — a named, registered check.
  File rules see one parsed file (:class:`FileContext`); project
  rules see every linted file plus the test tree
  (:class:`ProjectContext`) for cross-referenced invariants such as
  contract-suite coverage.
* Waivers — ``# repro-lint: allow[REP105] reason`` on the flagged
  line (or the line directly above, for lines with no room) suppress
  a finding *with an audit trail*: the reason is mandatory, and a
  waiver that stops matching anything is itself reported (REP100), so
  waivers cannot silently outlive the code they excused.
* Baseline — an optional JSON ledger of pre-existing findings to
  tolerate during bring-up; entries are keyed on (rule, path,
  normalized line content) so unrelated edits don't shift them.

The concrete invariant rules live in :mod:`repro.lint.rules`; the
command line in :mod:`repro.lint.cli`.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ReproError

#: rule id of waiver-hygiene findings (unused / malformed waivers).
WAIVER_RULE = "REP100"
#: rule id of files the linter cannot parse.
PARSE_RULE = "REP001"

_WAIVER_RE = re.compile(
    r"repro-lint:\s*allow\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)\Z"
)
_RULE_ID_RE = re.compile(r"\AREP\d{3}\Z")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class Waiver:
    """One parsed ``# repro-lint: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class LintConfig:
    """Scopes and cross-reference tables the rules consult.

    Paths are matched by suffix (``"repro/exec/store.py"`` matches
    the file wherever the repo is checked out) or, for patterns
    ending in ``/``, by directory segment (``"repro/exec/"`` matches
    every module under the package; ``"benchmarks/"`` matches the
    top-level benchmark scripts).  Everything here has defaults that
    encode *this* repository's layout; tests override freely.
    """

    # REP102 — wall-clock quarantine.
    wallclock_critical_modules: tuple[str, ...] = (
        "repro/exec/cache.py",
        "repro/sim/results.py",
    )
    wallclock_function_markers: tuple[str, ...] = (
        "fingerprint",
        "canonical",
    )
    wallclock_allow_modules: tuple[str, ...] = (
        # Lease horizons, GC clocks, entry metadata and operator
        # display legitimately read the wall clock; none of it flows
        # into fingerprints or result payloads.
        "repro/exec/queue.py",
        "repro/exec/store.py",
        "repro/exec/lifecycle.py",
        "repro/exec/cli.py",
        "repro/exec/worker.py",
        "repro/campaign/journal.py",
        # Telemetry is wall-clock by design: event timestamps and
        # fleet sampling read time.time(), and none of it flows into
        # fingerprints (the tracer deliberately defaults to
        # time.perf_counter for exactly that reason).
        "repro/obs/",
    )

    # REP103 — atomic durable writes.
    durable_modules: tuple[str, ...] = (
        "repro/exec/store.py",
        "repro/exec/queue.py",
        "repro/exec/cache.py",
        "repro/exec/lifecycle.py",
        "repro/campaign/journal.py",
        "repro/analysis/io.py",
        "benchmarks/",
    )

    # REP104 — the one module blessed to call sqlite3.connect.
    sqlite_helper_modules: tuple[str, ...] = (
        "repro/exec/sqlite_util.py",
    )

    # REP105 — substrate modules whose broad handlers must route
    # through the transient-vs-terminal taxonomy.
    substrate_modules: tuple[str, ...] = (
        "repro/exec/",
        "repro/campaign/",
    )

    # REP106 — ABC root -> contract-suite test modules in which every
    # concrete subclass must appear by name.
    contract_suites: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: {
            "CacheStore": (
                "test_store_contract.py",
                "test_faults_contract.py",
                "test_resilience.py",
            ),
            "WorkQueue": (
                "test_exec_queue.py",
                "test_faults_contract.py",
                "test_resilience.py",
            ),
            "EvaluationBackend": ("test_backend_contract.py",),
            "CampaignJournal": ("test_campaign_journal.py",),
            "AcquisitionStrategy": ("test_campaign.py",),
        }
    )


def path_matches(relpath: str, patterns: Sequence[str]) -> bool:
    """Whether a posix relpath is in scope for any pattern."""
    slashed = "/" + relpath
    for pattern in patterns:
        if pattern.endswith("/"):
            if relpath.startswith(pattern) or f"/{pattern}" in slashed:
                return True
        elif relpath == pattern or relpath.endswith("/" + pattern):
            return True
    return False


class FileContext:
    """One parsed source file as the file rules see it."""

    def __init__(
        self,
        path: Path,
        relpath: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
    ):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self._parents: dict[ast.AST, ast.AST] | None = None

    def in_scope(self, patterns: Sequence[str]) -> bool:
        return path_matches(self.relpath, patterns)

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """child node -> parent node, built lazily once per file."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Nearest function the node sits in, or None at module level."""
        parents = self.parent_map()
        current = parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return current
            current = parents.get(current)
        return None

    def finding(
        self, rule: "Rule", node_or_line, message: str
    ) -> Finding:
        line = (
            node_or_line
            if isinstance(node_or_line, int)
            else node_or_line.lineno
        )
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=line,
            message=message,
            severity=rule.severity,
        )


@dataclass
class ProjectContext:
    """Everything a cross-file rule needs: all linted files plus the
    test tree the contract suites live in."""

    files: list[FileContext]
    config: LintConfig
    tests_dir: Path | None = None

    def contract_module_text(self, filename: str) -> str | None:
        if self.tests_dir is None:
            return None
        candidate = self.tests_dir / filename
        try:
            return candidate.read_text(encoding="utf-8")
        except OSError:
            return None


class Rule:
    """A registered invariant check.  Subclass, set the class
    attributes, implement :meth:`check`, decorate with
    :func:`register`."""

    id: str = ""
    title: str = ""
    severity: str = "error"
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()


class ProjectRule(Rule):
    """A rule that needs the whole project (e.g. src/tests
    cross-references).  ``check`` is never called for these."""

    def check_project(
        self, project: ProjectContext
    ) -> Iterable[Finding]:
        return ()


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of the rule to the
    registry; duplicate ids are a programming error."""
    instance = cls()
    if not _RULE_ID_RE.match(instance.id or ""):
        raise ReproError(
            f"rule {cls.__name__} has invalid id {instance.id!r}"
        )
    if instance.id in _REGISTRY:
        raise ReproError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    # Importing the rule pack registers it; deferred to avoid a cycle.
    from repro.lint import rules as _rules  # noqa: F401

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def known_rule_ids() -> set[str]:
    ids = {rule.id for rule in all_rules()}
    ids.update({WAIVER_RULE, PARSE_RULE})
    return ids


# -- waivers -------------------------------------------------------------------


def parse_waivers(
    source: str, relpath: str
) -> tuple[list[Waiver], list[Finding]]:
    """Extract waiver comments; malformed ones become REP100 findings.

    Comments are located with :mod:`tokenize` so string literals that
    merely *mention* the waiver syntax are never misread as waivers;
    if the file does not tokenize (the parse rule reports that
    separately) there are no waivers.
    """
    waivers: list[Waiver] = []
    findings: list[Finding] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers, findings
    known = known_rule_ids()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string.lstrip("#").strip()
        if "repro-lint:" not in comment:
            continue
        line = token.start[0]
        match = _WAIVER_RE.search(comment)
        if match is None:
            findings.append(
                Finding(
                    rule=WAIVER_RULE,
                    path=relpath,
                    line=line,
                    message=(
                        "malformed repro-lint comment; the syntax is "
                        "'# repro-lint: allow[RULE] reason'"
                    ),
                )
            )
            continue
        rule_ids = tuple(
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        reason = match.group("reason").strip()
        bad = [rid for rid in rule_ids if rid not in known]
        if not rule_ids or bad:
            findings.append(
                Finding(
                    rule=WAIVER_RULE,
                    path=relpath,
                    line=line,
                    message=(
                        f"waiver names unknown rule(s) {bad}"
                        if bad
                        else "waiver names no rule"
                    ),
                )
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    rule=WAIVER_RULE,
                    path=relpath,
                    line=line,
                    message=(
                        f"waiver for {', '.join(rule_ids)} carries no "
                        "reason; every waiver must say why"
                    ),
                )
            )
            continue
        waivers.append(Waiver(line=line, rules=rule_ids, reason=reason))
    return waivers, findings


def _apply_waivers(
    findings: list[Finding], waivers: list[Waiver]
) -> tuple[list[Finding], int]:
    """Drop findings a waiver covers (same line or the line below a
    standalone waiver comment); return survivors + waived count."""
    by_line: dict[int, list[Waiver]] = {}
    for waiver in waivers:
        by_line.setdefault(waiver.line, []).append(waiver)
    kept: list[Finding] = []
    waived = 0
    for finding in findings:
        if finding.rule in (WAIVER_RULE, PARSE_RULE):
            kept.append(finding)  # hygiene findings are not waivable
            continue
        covering = None
        for line in (finding.line, finding.line - 1):
            for waiver in by_line.get(line, []):
                if finding.rule in waiver.rules:
                    covering = waiver
                    break
            if covering:
                break
        if covering is not None:
            covering.used = True
            waived += 1
        else:
            kept.append(finding)
    return kept, waived


# -- baseline ------------------------------------------------------------------


def _baseline_key(finding: Finding, lines: Sequence[str]) -> dict:
    index = finding.line - 1
    content = (
        lines[index].strip() if 0 <= index < len(lines) else ""
    )
    return {
        "rule": finding.rule,
        "path": finding.path,
        "content": content,
    }


def load_baseline(path: str | Path) -> list[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ReproError(f"baseline {path} has no entries list")
    return entries


def write_baseline(
    path: str | Path, result: "LintResult"
) -> None:
    from repro.fsutil import atomic_write_json

    atomic_write_json(
        path,
        {"version": 1, "entries": result.baseline_entries()},
        indent=2,
        sort_keys=True,
    )


# -- runner --------------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]
    waived: int = 0
    suppressed: int = 0
    files: int = 0
    #: source lines per relpath, kept for baseline generation.
    sources: dict[str, list[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 2

    def baseline_entries(self) -> list[dict]:
        entries = [
            _baseline_key(f, self.sources.get(f.path, ()))
            for f in self.findings
        ]
        return sorted(
            entries, key=lambda e: (e["path"], e["rule"], e["content"])
        )

    def to_json(self) -> dict:
        return {
            "findings": [f.to_json() for f in self.findings],
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "waived": self.waived,
                "suppressed": self.suppressed,
                "clean": self.clean,
            },
        }


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every .py under the given files/directories, sorted,
    skipping caches and hidden directories."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in parts
                ):
                    continue
                yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise ReproError(f"no such path: {path}")


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def lint_file(
    path: Path,
    relpath: str,
    config: LintConfig,
) -> tuple[FileContext | None, list[Finding], list[Waiver]]:
    """Run every file rule on one file.

    Returns the parsed context (None when unparseable), the raw
    findings (waivers *not* yet applied) and the waivers found.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        finding = Finding(
            rule=PARSE_RULE,
            path=relpath,
            line=1,
            message=f"cannot read file: {error}",
        )
        return None, [finding], []
    return lint_source(source, relpath, config, path=path)


def lint_source(
    source: str,
    relpath: str,
    config: LintConfig | None = None,
    path: Path | None = None,
) -> tuple[FileContext | None, list[Finding], list[Waiver]]:
    """Parse + run file rules over in-memory source (test seam)."""
    config = config or LintConfig()
    waivers, findings = parse_waivers(source, relpath)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        findings.append(
            Finding(
                rule=PARSE_RULE,
                path=relpath,
                line=error.lineno or 1,
                message=f"syntax error: {error.msg}",
            )
        )
        return None, findings, waivers
    ctx = FileContext(
        path=path or Path(relpath),
        relpath=relpath,
        source=source,
        tree=tree,
        config=config,
    )
    for rule in all_rules():
        if isinstance(rule, ProjectRule):
            continue
        findings.extend(rule.check(ctx))
    return ctx, findings, waivers


def lint_text(
    source: str,
    relpath: str = "repro/module.py",
    config: LintConfig | None = None,
) -> LintResult:
    """Lint one in-memory snippet end to end (fixture-test seam):
    file rules + waiver application + unused-waiver findings."""
    _, findings, waivers = lint_source(source, relpath, config)
    findings, waived = _apply_waivers(findings, waivers)
    findings.extend(_unused_waiver_findings(waivers, relpath))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintResult(
        findings=findings,
        waived=waived,
        files=1,
        sources={relpath: source.splitlines()},
    )


def _unused_waiver_findings(
    waivers: Sequence[Waiver], relpath: str
) -> list[Finding]:
    findings = []
    for waiver in waivers:
        if waiver.used:
            continue
        findings.append(
            Finding(
                rule=WAIVER_RULE,
                path=relpath,
                line=waiver.line,
                message=(
                    f"unused waiver for {', '.join(waiver.rules)} "
                    f"({waiver.reason!r}): no such finding here — "
                    "delete the waiver or restore the reason for it"
                ),
            )
        )
    return findings


def lint_paths(
    paths: Sequence[str | Path],
    *,
    config: LintConfig | None = None,
    tests_dir: str | Path | None = None,
    baseline: Sequence[dict] | None = None,
    root: str | Path | None = None,
) -> LintResult:
    """Lint files/directories; the complete pipeline.

    Args:
        paths: files or directories to lint.
        config: rule scopes; defaults encode this repository.
        tests_dir: where the contract suites live (REP106); a missing
            or None directory skips the cross-reference rule.
        baseline: entries from :func:`load_baseline` to suppress.
        root: base directory findings are reported relative to
            (default: the current working directory).
    """
    config = config or LintConfig()
    base = Path(root) if root is not None else Path.cwd()
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    waivers_by_file: dict[str, list[Waiver]] = {}
    sources: dict[str, list[str]] = {}
    files = 0
    for path in iter_python_files(paths):
        files += 1
        relpath = _relpath(path, base)
        ctx, file_findings, waivers = lint_file(path, relpath, config)
        findings.extend(file_findings)
        waivers_by_file[relpath] = waivers
        if ctx is not None:
            contexts.append(ctx)
            sources[relpath] = ctx.lines

    tests_path: Path | None = None
    if tests_dir is not None:
        tests_path = Path(tests_dir)
        if not tests_path.is_dir():
            tests_path = None
    project = ProjectContext(
        files=contexts, config=config, tests_dir=tests_path
    )
    for rule in all_rules():
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))

    kept: list[Finding] = []
    waived = 0
    all_waivers = [
        (relpath, waiver)
        for relpath, file_waivers in waivers_by_file.items()
        for waiver in file_waivers
    ]
    by_file: dict[str, list[Finding]] = {}
    for finding in findings:
        by_file.setdefault(finding.path, []).append(finding)
    for relpath, file_findings in by_file.items():
        survivors, file_waived = _apply_waivers(
            file_findings, waivers_by_file.get(relpath, [])
        )
        kept.extend(survivors)
        waived += file_waived
    for relpath, waiver in all_waivers:
        kept.extend(
            _unused_waiver_findings([waiver], relpath)
            if not waiver.used
            else ()
        )

    suppressed = 0
    if baseline:
        keyed = {
            (e.get("rule"), e.get("path"), e.get("content"))
            for e in baseline
        }
        filtered = []
        for finding in kept:
            key = _baseline_key(
                finding, sources.get(finding.path, ())
            )
            if (key["rule"], key["path"], key["content"]) in keyed:
                suppressed += 1
            else:
                filtered.append(finding)
        kept = filtered

    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintResult(
        findings=kept,
        waived=waived,
        suppressed=suppressed,
        files=files,
        sources=sources,
    )
